//! Shootdown-coalescing properties: with `deferred_shootdowns` on, queued
//! page invalidations that drain at the end of the mapping operation (or a
//! security boundary) must leave **every hart's TLBs in exactly the state**
//! the eager per-page broadcasts would have produced — at 1, 2, and 4
//! harts, across random heap churn that warms remote TLBs between
//! operations. On top of state equality, the modeled IPI traffic must
//! *strictly decrease* on the workloads batching targets: fork/exit storms
//! (address-space teardown unmaps page-by-page) and huge-page splits under
//! `mprotect` (a span flush plus per-page permission downgrades). On a
//! single hart the knob must be a true no-op: cycle- and stat-identical.

use proptest::prelude::*;
use ptstore_core::{AccessKind, PrivilegeMode, VirtAddr, MIB, PAGE_SIZE};
use ptstore_kernel::process::VmPerms;
use ptstore_kernel::{Kernel, KernelConfig};

fn boot(harts: usize, deferred: bool) -> Kernel {
    let cfg = KernelConfig::cfi_ptstore()
        .with_mem_size(128 * MIB)
        .with_initial_secure_size(8 * MIB)
        .with_harts(harts)
        .with_deferred_shootdowns(deferred);
    Kernel::boot(cfg).expect("kernel boots")
}

/// Every TLB entry of every hart, as a sorted canonical listing.
fn tlb_state(k: &Kernel) -> Vec<String> {
    let mut v = Vec::new();
    for h in &k.harts {
        for e in h.mmu.itlb().entries() {
            v.push(format!("hart{} itlb {e:?}", h.id));
        }
        for e in h.mmu.dtlb().entries() {
            v.push(format!("hart{} dtlb {e:?}", h.id));
        }
    }
    v.sort();
    v
}

/// Mirrors init's satp onto `hart` and warms its D-TLB at `va` (ignoring
/// faults: an unmapped page warms nothing, identically on both kernels).
fn warm_remote(k: &mut Kernel, hart: usize, va: VirtAddr) {
    k.harts[hart].mmu.satp = k.harts[0].mmu.satp;
    let _ = k.harts[hart]
        .mmu
        .translate_data(&mut k.bus, va, AccessKind::Read, PrivilegeMode::User);
}

/// One step of the heap-churn workload, applied to both kernels.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Grow the heap by `pages` and write-touch each new page.
    Grow { pages: u8 },
    /// `mprotect` a small run of heap pages read-only (or back to RW).
    Protect { page: u8, pages: u8, ro: bool },
    /// `munmap` a small run of heap pages.
    Unmap { page: u8, pages: u8 },
    /// Re-touch a heap page (demand-remaps after an unmap).
    Touch { page: u8 },
    /// Warm a remote hart's D-TLB at a heap page.
    Warm { hart: u8, page: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (1u8..8).prop_map(|pages| Op::Grow { pages }),
        3 => (0u8..64, 1u8..8, any::<bool>())
            .prop_map(|(page, pages, ro)| Op::Protect { page, pages, ro }),
        3 => (0u8..64, 1u8..8).prop_map(|(page, pages)| Op::Unmap { page, pages }),
        2 => (0u8..64).prop_map(|page| Op::Touch { page }),
        2 => (0u8..4, 0u8..64).prop_map(|(hart, page)| Op::Warm { hart, page }),
    ]
}

/// Runs one op on a kernel; the return value (which both kernels must
/// agree on) is the op's coarse outcome, for divergence diagnostics.
fn run_op(k: &mut Kernel, heap_base: u64, grown: &mut u64, op: Op) -> String {
    let page_va = |page: u8, grown: u64| {
        let idx = if grown == 0 {
            0
        } else {
            u64::from(page) % grown
        };
        VirtAddr::new(heap_base + idx * PAGE_SIZE)
    };
    match op {
        Op::Grow { pages } => {
            let pages = u64::from(pages);
            let new_brk = heap_base + (*grown + pages) * PAGE_SIZE;
            let r = k.sys_brk(new_brk).map(|_| ());
            let mut out = format!("grow {r:?}");
            if r.is_ok() {
                for i in *grown..*grown + pages {
                    // A write-touch can fault when earlier mprotect churn
                    // left the heap head read-only; both kernels must agree.
                    let va = VirtAddr::new(heap_base + i * PAGE_SIZE);
                    let t = k.sys_touch(va, true);
                    out.push_str(if t.is_ok() { "+" } else { "-" });
                }
                *grown += pages;
            }
            out
        }
        Op::Protect { page, pages, ro } => {
            if *grown == 0 {
                return "protect skipped".into();
            }
            let va = page_va(page, *grown);
            let len = u64::from(pages) * PAGE_SIZE;
            let perms = if ro { VmPerms::RO } else { VmPerms::RW };
            let r = k.sys_mprotect(va, len, perms);
            format!("protect {r:?}")
        }
        Op::Unmap { page, pages } => {
            if *grown == 0 {
                return "unmap skipped".into();
            }
            let va = page_va(page, *grown);
            let r = k.sys_munmap(va, u64::from(pages) * PAGE_SIZE);
            format!("unmap {r:?}")
        }
        Op::Touch { page } => {
            if *grown == 0 {
                return "touch skipped".into();
            }
            // A write into a read-only range segfaults identically on both
            // kernels; read-touches always resolve.
            let r = k.sys_touch(page_va(page, *grown), false);
            format!("touch {r:?}")
        }
        Op::Warm { hart, page } => {
            let hart = usize::from(hart) % k.harts.len();
            if hart == 0 || *grown == 0 {
                return "warm skipped".into();
            }
            warm_remote(k, hart, page_va(page, *grown));
            "warmed".into()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Deferred-then-drained flushes are TLB-state-equivalent to eager
    /// broadcasts at 1, 2, and 4 harts, step by step.
    #[test]
    fn drained_tlb_state_matches_eager(
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        for harts in [1usize, 2, 4] {
            let mut eager = boot(harts, false);
            let mut deferred = boot(harts, true);
            let heap_base = eager.procs.get(1).expect("init").brk;
            prop_assert_eq!(heap_base, deferred.procs.get(1).expect("init").brk);
            let (mut ge, mut gd) = (0u64, 0u64);
            for (step, &op) in ops.iter().enumerate() {
                let a = run_op(&mut eager, heap_base, &mut ge, op);
                let b = run_op(&mut deferred, heap_base, &mut gd, op);
                prop_assert_eq!(&a, &b, "outcome diverged at step {} ({:?})", step, op);
                // Every mapping operation ends on a drained queue (its own
                // end-of-op drain); the explicit drain must be a no-op.
                prop_assert_eq!(deferred.pending_deferred_flushes(), 0);
                deferred.drain_deferred_flushes();
                prop_assert_eq!(
                    tlb_state(&eager),
                    tlb_state(&deferred),
                    "TLB state diverged at {} harts, step {} ({:?})",
                    harts, step, op
                );
            }
            // Page-level bookkeeping agreed throughout.
            prop_assert_eq!(eager.stats.page_faults, deferred.stats.page_faults);
            prop_assert_eq!(eager.stats.sfences, deferred.stats.sfences);
        }
    }

    /// With one hart the knob is inert: the same workload produces the
    /// same cycle total and the same counters, bit for bit.
    #[test]
    fn single_hart_is_cycle_identical(
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        let mut eager = boot(1, false);
        let mut deferred = boot(1, true);
        let heap_base = eager.procs.get(1).expect("init").brk;
        let (mut ge, mut gd) = (0u64, 0u64);
        for &op in &ops {
            let a = run_op(&mut eager, heap_base, &mut ge, op);
            let b = run_op(&mut deferred, heap_base, &mut gd, op);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(eager.cycles.total(), deferred.cycles.total());
        prop_assert_eq!(eager.stats, deferred.stats);
        prop_assert_eq!(deferred.stats.deferred_drains, 0);
        prop_assert_eq!(deferred.flush_generation(), 0);
    }
}

/// Forks a child, switches to it, lets it dirty `pages` CoW heap pages,
/// and reaps it through exit — the teardown unmap storm is the batching
/// target. Repeated `rounds` times.
fn fork_stress(k: &mut Kernel, rounds: usize, pages: u64) {
    let heap_base = k.procs.get(1).expect("init").brk;
    k.sys_brk(heap_base + pages * PAGE_SIZE).expect("brk");
    for i in 0..pages {
        k.sys_touch(VirtAddr::new(heap_base + i * PAGE_SIZE), true)
            .expect("touch parent heap");
    }
    for _ in 0..rounds {
        let child = k.sys_fork().expect("fork");
        k.do_yield().expect("switch to child");
        assert_eq!(k.current_pid(), child, "child scheduled");
        for i in 0..pages {
            k.sys_touch(VirtAddr::new(heap_base + i * PAGE_SIZE), true)
                .expect("child CoW write");
        }
        k.sys_exit(0).expect("child exits");
        assert_eq!(k.current_pid(), 1, "back on init");
    }
}

#[test]
fn fork_stress_ipis_strictly_decrease() {
    let mut eager = boot(2, false);
    let mut deferred = boot(2, true);
    fork_stress(&mut eager, 4, 8);
    fork_stress(&mut deferred, 4, 8);

    // Same work happened...
    assert_eq!(eager.stats.forks, deferred.stats.forks);
    assert_eq!(eager.stats.cow_faults, deferred.stats.cow_faults);
    assert_eq!(eager.stats.exits, deferred.stats.exits);
    // ...with strictly less IPI traffic, and the drains prove why.
    assert!(
        deferred.stats.shootdown_ipis < eager.stats.shootdown_ipis,
        "deferred {} !< eager {}",
        deferred.stats.shootdown_ipis,
        eager.stats.shootdown_ipis
    );
    assert!(deferred.stats.tlb_shootdowns < eager.stats.tlb_shootdowns);
    assert!(deferred.stats.deferred_drains > 0);
    assert!(deferred.stats.deferred_pages_coalesced > deferred.stats.deferred_drains);
    assert_eq!(deferred.flush_generation(), deferred.stats.deferred_drains);
    // Remote TLB hygiene held: both machines end in the same TLB state.
    assert_eq!(tlb_state(&eager), tlb_state(&deferred));
}

/// Maps a huge block, then `mprotect`s a 16-page interior run read-only —
/// forcing a split (span flush) plus 16 per-page permission downgrades,
/// all of which must ride one batched broadcast.
fn huge_split(k: &mut Kernel) {
    let va = k.sys_mmap_huge(2 * MIB).expect("huge mmap");
    k.sys_touch(va, true).expect("touch huge");
    k.sys_mprotect(va + 4 * PAGE_SIZE, 16 * PAGE_SIZE, VmPerms::RO)
        .expect("interior mprotect splits");
}

#[test]
fn huge_split_ipis_strictly_decrease() {
    for harts in [2usize, 4] {
        let mut eager = boot(harts, false);
        let mut deferred = boot(harts, true);
        huge_split(&mut eager);
        huge_split(&mut deferred);
        assert!(
            deferred.stats.shootdown_ipis < eager.stats.shootdown_ipis,
            "{harts} harts: deferred {} !< eager {}",
            deferred.stats.shootdown_ipis,
            eager.stats.shootdown_ipis
        );
        assert!(deferred.stats.tlb_shootdowns < eager.stats.tlb_shootdowns);
        // The split + downgrades coalesced into a single drain.
        assert_eq!(deferred.stats.deferred_drains, 1);
        assert!(deferred.stats.deferred_pages_coalesced >= 17);
        assert_eq!(tlb_state(&eager), tlb_state(&deferred));
    }
}
