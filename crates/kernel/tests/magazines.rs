//! Allocation-magazine properties: with `alloc_magazines` on, per-hart
//! LIFO caches front the page-table-page and PCB allocations. The knob
//! must change *only* the allocator work — every functional counter
//! (forks, exits, faults, zero-checks) and every security outcome stays
//! identical, the zero-check defense still fires on every table page
//! (magazine hits included), and a fork/exit storm costs strictly fewer
//! cycles. Drains (slab reclaim, secure-region adjustment) must return
//! the caches to canonical allocator state.

use ptstore_core::{VirtAddr, MIB, PAGE_SIZE};
use ptstore_kernel::{Kernel, KernelConfig};

fn boot(magazines: bool) -> Kernel {
    let cfg = KernelConfig::cfi_ptstore()
        .with_mem_size(128 * MIB)
        .with_initial_secure_size(8 * MIB)
        .with_alloc_magazines(magazines);
    Kernel::boot(cfg).expect("kernel boots")
}

/// Fork/exit/wait churn: each round builds a child address space (table
/// pages + a PCB), dirties some CoW pages, and tears it all down.
fn storm(k: &mut Kernel, rounds: usize) {
    let heap_base = k.procs.get(1).expect("init").brk;
    k.sys_brk(heap_base + 8 * PAGE_SIZE).expect("brk");
    for i in 0..8 {
        k.sys_touch(VirtAddr::new(heap_base + i * PAGE_SIZE), true)
            .expect("touch heap");
    }
    for _ in 0..rounds {
        let child = k.sys_fork().expect("fork");
        k.do_yield().expect("switch to child");
        assert_eq!(k.current_pid(), child);
        for i in 0..8 {
            k.sys_touch(VirtAddr::new(heap_base + i * PAGE_SIZE), true)
                .expect("child CoW write");
        }
        k.sys_exit(0).expect("child exit");
        let (reaped, code) = k.sys_wait().expect("reap child");
        assert_eq!((reaped, code), (child, 0));
    }
}

#[test]
fn storm_is_functionally_identical_and_cheaper() {
    let mut plain = boot(false);
    let mut magged = boot(true);
    storm(&mut plain, 12);
    storm(&mut magged, 12);

    // Same functional story, defense included: every table page — magazine
    // hits too — went through the zero-check.
    assert_eq!(plain.stats.forks, magged.stats.forks);
    assert_eq!(plain.stats.exits, magged.stats.exits);
    assert_eq!(plain.stats.cow_faults, magged.stats.cow_faults);
    assert_eq!(plain.stats.zero_checks, magged.stats.zero_checks);
    assert_eq!(plain.stats.zero_check_failures, 0);
    assert_eq!(magged.stats.zero_check_failures, 0);
    assert_eq!(plain.stats.pt_pages_live, magged.stats.pt_pages_live);
    assert!(plain.security_log.is_empty() && magged.security_log.is_empty());

    // The storm reuses table pages and PCBs round after round: with
    // magazines those reuses skip the buddy/slab work entirely.
    assert!(
        magged.cycles.total() < plain.cycles.total(),
        "magazines {} !< plain {}",
        magged.cycles.total(),
        plain.cycles.total()
    );
}

#[test]
fn drain_restores_canonical_state() {
    let mut k = boot(true);
    storm(&mut k, 6);
    // The storm parked table pages (and PCBs) in hart 0's magazines.
    let drained = k.drain_magazines().expect("drain");
    assert!(drained > 0, "storm left objects in the magazines");
    assert_eq!(k.drain_magazines().expect("second drain"), 0);
    // Reclaim flushes implicitly, so shrink sees every empty page.
    storm(&mut k, 2);
    k.reclaim_slabs().expect("reclaim");
    assert_eq!(k.drain_magazines().expect("post-reclaim"), 0);
    // The machine is still fully functional afterwards.
    storm(&mut k, 2);
}

#[test]
fn magazines_off_by_default() {
    let k = Kernel::boot(
        KernelConfig::cfi_ptstore()
            .with_mem_size(128 * MIB)
            .with_initial_secure_size(8 * MIB),
    )
    .expect("kernel boots");
    assert!(!k.cfg.alloc_magazines, "goldens pin the knob-off behavior");
}
