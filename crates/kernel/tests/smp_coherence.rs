//! Cross-hart TLB coherence: mapping changes made on one hart must be
//! observed by every other hart only through the modeled shootdown
//! (`sfence.vma` broadcast + acks), never by luck. Each test warms a
//! remote hart's D-TLB, performs the mapping change on the boot hart, and
//! checks the remote hart re-walks instead of consuming the stale entry.
//!
//! The last test is the attack variant: dynamic secure-region adjustment
//! must quiesce remote walkers, so a stale translation into the newly
//! absorbed range cannot survive, and the physical range itself is behind
//! the PMP.

use ptstore_core::{AccessKind, PhysAddr, PrivilegeMode, VirtAddr, MIB, PAGE_SIZE};
use ptstore_kernel::process::VmPerms;
use ptstore_kernel::{Kernel, KernelConfig};
use ptstore_mmu::{TranslateError, TranslationOutcome};

fn boot_smp(harts: usize) -> Kernel {
    let cfg = KernelConfig::cfi_ptstore()
        .with_mem_size(256 * MIB)
        .with_initial_secure_size(16 * MIB)
        .with_harts(harts);
    Kernel::boot(cfg).expect("smp kernel boots")
}

/// Maps and touches one heap page on the boot hart, then warms `hart`'s
/// D-TLB with the same translation. Returns the page's VA.
fn map_and_warm_remote(k: &mut Kernel, hart: usize) -> VirtAddr {
    let brk0 = k.procs.get(1).expect("init").brk;
    k.sys_brk(brk0 + PAGE_SIZE).expect("brk");
    let va = VirtAddr::new(brk0);
    k.sys_touch(va, true).expect("touch on boot hart");

    // The remote hart runs the same address space (as a second thread of
    // init would): mirror satp, then translate once to fill its D-TLB.
    k.harts[hart].mmu.satp = k.harts[0].mmu.satp;
    let first = k.harts[hart]
        .mmu
        .translate_data(&mut k.bus, va, AccessKind::Read, PrivilegeMode::User)
        .expect("remote walk");
    assert!(
        matches!(first, TranslationOutcome::Walk { .. }),
        "first remote access must walk"
    );
    let second = k.harts[hart]
        .mmu
        .translate_data(&mut k.bus, va, AccessKind::Read, PrivilegeMode::User)
        .expect("remote hit");
    assert!(
        matches!(second, TranslationOutcome::TlbHit { .. }),
        "remote D-TLB is warm"
    );
    va
}

#[test]
fn mprotect_shootdown_invalidates_remote_write_translation() {
    let mut k = boot_smp(2);
    let va = map_and_warm_remote(&mut k, 1);

    // Hart 1 can write through its cached translation right now.
    k.harts[1]
        .mmu
        .translate_data(&mut k.bus, va, AccessKind::Write, PrivilegeMode::User)
        .expect("writable before mprotect");

    // Hart 0 revokes write permission; the flush must broadcast.
    let before = k.stats.tlb_shootdowns;
    k.sys_mprotect(va, PAGE_SIZE, VmPerms::RO)
        .expect("mprotect");
    assert!(k.stats.tlb_shootdowns > before, "mprotect broadcast an IPI");
    assert!(k.stats.shootdown_ipis > 0);

    // The stale writable entry is gone: hart 1's next write re-walks the
    // (now read-only) table and faults instead of silently succeeding.
    let write =
        k.harts[1]
            .mmu
            .translate_data(&mut k.bus, va, AccessKind::Write, PrivilegeMode::User);
    assert!(
        matches!(write, Err(TranslateError::PageFault { .. })),
        "stale writable translation must not survive the shootdown: {write:?}"
    );
    // Reads still work — and come from a fresh walk, not the old entry.
    let read = k.harts[1]
        .mmu
        .translate_data(&mut k.bus, va, AccessKind::Read, PrivilegeMode::User)
        .expect("read-only page still readable");
    assert!(matches!(read, TranslationOutcome::Walk { .. }));
}

#[test]
fn munmap_shootdown_unmaps_on_every_hart() {
    let mut k = boot_smp(4);
    // Warm hart 3's D-TLB on a freshly mmap'd page.
    let va = k.sys_mmap(PAGE_SIZE).expect("mmap");
    k.sys_touch(va, true).expect("touch mapping");
    k.harts[3].mmu.satp = k.harts[0].mmu.satp;
    k.harts[3]
        .mmu
        .translate_data(&mut k.bus, va, AccessKind::Read, PrivilegeMode::User)
        .expect("remote walk");
    let warm = k.harts[3]
        .mmu
        .translate_data(&mut k.bus, va, AccessKind::Read, PrivilegeMode::User)
        .expect("remote hit");
    assert!(matches!(warm, TranslationOutcome::TlbHit { .. }));

    // Hart 0 unmaps; all three remote harts must ack the shootdown.
    let before = k.stats.shootdown_ipis;
    k.sys_munmap(va, PAGE_SIZE).expect("munmap");
    assert!(
        k.stats.shootdown_ipis >= before + 3,
        "3 remote acks per flush"
    );

    let stale =
        k.harts[3]
            .mmu
            .translate_data(&mut k.bus, va, AccessKind::Read, PrivilegeMode::User);
    assert!(
        matches!(stale, Err(TranslateError::PageFault { .. })),
        "hart 3 must not translate an unmapped page: {stale:?}"
    );
}

#[test]
fn single_hart_never_pays_shootdowns() {
    let mut k = boot_smp(1);
    let brk0 = k.procs.get(1).expect("init").brk;
    k.sys_brk(brk0 + PAGE_SIZE).expect("brk");
    k.sys_touch(VirtAddr::new(brk0), true).expect("touch");
    k.sys_mprotect(VirtAddr::new(brk0), PAGE_SIZE, VmPerms::RO)
        .expect("mprotect");
    assert_eq!(k.stats.tlb_shootdowns, 0);
    assert_eq!(k.stats.shootdown_ipis, 0);
    assert_eq!(k.cycles.of(ptstore_kernel::CostKind::Ipi), 0);
}

#[test]
fn adjustment_quiesces_remote_walkers_and_pmp_guards_the_new_range() {
    let mut k = boot_smp(2);
    let va = map_and_warm_remote(&mut k, 1);

    let old_region = k.secure_region().expect("ptstore region");
    let before = k.stats.tlb_shootdowns;
    k.adjust_secure_region().expect("adjustment");
    let new_region = k.secure_region().expect("region after growth");
    assert!(new_region.base() < old_region.base(), "region grew down");
    assert!(
        k.stats.tlb_shootdowns > before,
        "adjustment must broadcast a quiescence IPI before migrating"
    );

    // Hart 1's cached translation did not survive the quiescence: the next
    // access re-walks the (possibly migrated) page tables.
    let after = k.harts[1]
        .mmu
        .translate_data(&mut k.bus, va, AccessKind::Read, PrivilegeMode::User)
        .expect("page still mapped after migration");
    assert!(
        matches!(after, TranslationOutcome::Walk { .. }),
        "stale entry must be flushed by the quiescence broadcast"
    );

    // Attack variant: a hart that somehow retained the physical address of
    // a page now inside the secure region still cannot write it — the PMP
    // rejects regular-channel stores into the grown range.
    let stolen = PhysAddr::new(new_region.base().as_u64());
    assert!(k.is_secure_phys(stolen));
    let attack = k.attacker_write_phys_via_stale_tlb(stolen, 0xDEAD_BEEF_DEAD_BEEF);
    assert!(
        attack.is_err(),
        "stale-translation write into the adjusted secure region must be blocked"
    );
}
