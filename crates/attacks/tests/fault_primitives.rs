//! Cross-checks the ptstore-fault injector against the attack battery's
//! view of the mechanism: the layer that stops each injected fault class
//! must be the same layer §V credits for stopping the corresponding
//! hand-written attack. If the injector reported a different layer, one
//! of the two models of the mechanism would be wrong.

use ptstore_fault::{run_one, CampaignConfig, DetectedBy, FaultClass, RunClass};
use ptstore_trace::RejectingLayer;

/// One deterministic run of a single class on the full-mechanism kernel.
fn run(class: FaultClass, seed: u64) -> ptstore_fault::RunResult {
    let kcfg = CampaignConfig::quick(0, 0, 2).kernel_config();
    run_one(&kcfg, class, seed, 0, 16, true)
}

#[test]
fn pte_flip_is_stopped_where_pt_tampering_is() {
    // The battery's PT-Tampering attack dies at the PMP S-bit check; a
    // flipped PTE bit through the regular channel must die there too.
    let r = run(FaultClass::PteBitFlip, 11);
    assert_eq!(r.outcome, RunClass::DetectedAndContained);
    assert_eq!(
        r.detected_by,
        Some(DetectedBy::Mechanism(RejectingLayer::PmpSBit))
    );
}

#[test]
fn satp_corruption_is_stopped_where_pt_reuse_is() {
    // Pointing satp at attacker-controlled memory is the battery's
    // PT-Reuse shape; the PTW origin check refuses the first walk.
    let r = run(FaultClass::SatpCorrupt, 12);
    assert_eq!(r.outcome, RunClass::DetectedAndContained);
    assert_eq!(
        r.detected_by,
        Some(DetectedBy::Mechanism(RejectingLayer::PtwOriginCheck))
    );
}

#[test]
fn token_forgery_is_stopped_by_token_validation() {
    let r = run(FaultClass::TokenForge, 13);
    assert_eq!(r.outcome, RunClass::DetectedAndContained);
    assert_eq!(
        r.detected_by,
        Some(DetectedBy::Mechanism(RejectingLayer::TokenValidation))
    );
}

#[test]
fn pmp_reprogramming_is_refused_by_firmware() {
    // Raising the secure-region base would shrink it; the SBI refuses
    // (monotonic-growth rule), same as for the battery's CSR attack.
    let r = run(FaultClass::PmpCsrCorrupt, 14);
    assert_eq!(r.outcome, RunClass::DetectedAndContained);
    assert_eq!(r.detected_by, Some(DetectedBy::Firmware));
}

#[test]
fn zone_exhaustion_is_absorbed_by_the_allocator() {
    let r = run(FaultClass::ZoneExhaust, 15);
    assert_eq!(r.outcome, RunClass::DetectedAndContained);
    assert_eq!(r.detected_by, Some(DetectedBy::Allocator));
}

#[test]
fn ipi_faults_are_benign_for_invariants() {
    // A dropped or reordered shootdown can leave a *stale translation*
    // (a liveness hazard the SMP model measures) but never grants user
    // access to page-table storage — the oracle stays silent.
    for (class, seed) in [(FaultClass::IpiDrop, 16), (FaultClass::IpiReorder, 17)] {
        let r = run(class, seed);
        assert_eq!(r.outcome, RunClass::Benign, "{class}: {:?}", r);
        assert_eq!(r.violations, 0);
    }
}
