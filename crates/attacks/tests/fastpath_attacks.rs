//! The security matrix must be fast-path-invariant: every attack × defense
//! × tokens cell produces the same verdict (and the same `BlockedBy`
//! attribution) whether the host-side memoizations are on or off, at one
//! hart and on the SMP machine. A fast path that changed a security
//! verdict would be a model change smuggled in as an optimization.

use ptstore_attacks::{run_attack_on_with_fast_path, AttackKind};
use ptstore_kernel::DefenseMode;

#[test]
fn verdicts_are_fast_path_invariant_across_hart_counts() {
    let defenses = [
        (DefenseMode::None, true),
        (DefenseMode::PtRand, true),
        (DefenseMode::VirtualIsolation, true),
        (DefenseMode::PtStore, true),
        // Tokens-off ablation: the rows where PTStore's remaining layers
        // must do the blocking — the most delicate verdicts in the matrix.
        (DefenseMode::PtStore, false),
    ];
    for harts in [1usize, 2, 4] {
        for (defense, tokens) in defenses {
            for kind in AttackKind::ALL {
                let fast = run_attack_on_with_fast_path(harts, kind, defense, tokens, true);
                let slow = run_attack_on_with_fast_path(harts, kind, defense, tokens, false);
                assert_eq!(
                    fast, slow,
                    "verdict for {kind:?} vs {defense:?} (tokens={tokens}) \
                     depends on the fast path at {harts} hart(s)"
                );
            }
        }
    }
}
