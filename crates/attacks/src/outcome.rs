//! Attack outcome classification.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Which defense layer stopped an attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockedBy {
    /// The PMP S-bit: a regular instruction faulted inside the secure region
    /// (paper Fig. 1 ②).
    SecureRegionPmp,
    /// The page-table walker refused a table outside the secure region
    /// (paper Fig. 1 ⑤).
    PtwOriginCheck,
    /// Token validation rejected a page-table pointer (paper §III-C3).
    TokenCheck,
    /// The zero-check caught a non-free page-table page (paper §V-E3).
    ZeroCheck,
    /// Virtual-isolation page permissions (the baseline's defense).
    PagePermissions,
    /// The target had no mapping (PT-Rand's hidden placement, pre-leak).
    UnmappedTarget,
    /// The reused secure-region data was not valid as PTEs — all fields are
    /// 8-byte-aligned pointers, so their present bits are clear (§V-E2).
    InvalidAsPte,
}

impl fmt::Display for BlockedBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BlockedBy::SecureRegionPmp => "secure-region PMP (S-bit)",
            BlockedBy::PtwOriginCheck => "PTW origin check (satp.S)",
            BlockedBy::TokenCheck => "token mechanism",
            BlockedBy::ZeroCheck => "zero-check on PT pages",
            BlockedBy::PagePermissions => "page permissions (virtual isolation)",
            BlockedBy::UnmappedTarget => "unmapped target (randomisation)",
            BlockedBy::InvalidAsPte => "aligned pointers are invalid PTEs",
        })
    }
}

/// How an attack run ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackOutcome {
    /// The attack achieved its goal directly.
    Succeeded,
    /// The attack achieved its goal after an information-disclosure step
    /// (how randomisation-based defenses fall, §VI-1).
    SucceededViaLeak,
    /// A defense layer stopped it.
    Blocked(BlockedBy),
    /// The attack "worked" but gained nothing the defense cares about
    /// (the VM-metadata case of §V-E4: only user-space mappings moved).
    HarmlessToKernel,
}

impl AttackOutcome {
    /// True when the attacker reached their goal (leak-assisted counts).
    pub fn attacker_won(&self) -> bool {
        matches!(
            self,
            AttackOutcome::Succeeded | AttackOutcome::SucceededViaLeak
        )
    }
}

impl fmt::Display for AttackOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackOutcome::Succeeded => f.write_str("SUCCEEDED"),
            AttackOutcome::SucceededViaLeak => f.write_str("SUCCEEDED (via info leak)"),
            AttackOutcome::Blocked(by) => write!(f, "blocked by {by}"),
            AttackOutcome::HarmlessToKernel => f.write_str("no kernel impact"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attacker_won_classification() {
        assert!(AttackOutcome::Succeeded.attacker_won());
        assert!(AttackOutcome::SucceededViaLeak.attacker_won());
        assert!(!AttackOutcome::Blocked(BlockedBy::TokenCheck).attacker_won());
        assert!(!AttackOutcome::HarmlessToKernel.attacker_won());
    }

    #[test]
    fn displays_are_informative() {
        assert!(AttackOutcome::Blocked(BlockedBy::ZeroCheck)
            .to_string()
            .contains("zero-check"));
        assert!(AttackOutcome::SucceededViaLeak.to_string().contains("leak"));
    }

    /// Every defense layer renders a distinct, non-empty explanation.
    #[test]
    fn every_blocked_by_variant_displays_distinctly() {
        let all = [
            BlockedBy::SecureRegionPmp,
            BlockedBy::PtwOriginCheck,
            BlockedBy::TokenCheck,
            BlockedBy::ZeroCheck,
            BlockedBy::PagePermissions,
            BlockedBy::UnmappedTarget,
            BlockedBy::InvalidAsPte,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for by in all {
            let s = by.to_string();
            assert!(!s.is_empty(), "{by:?} renders empty");
            assert!(seen.insert(s.clone()), "duplicate display {s:?}");
            assert!(
                AttackOutcome::Blocked(by).to_string().contains(&s),
                "outcome display embeds the layer"
            );
        }
    }
}
