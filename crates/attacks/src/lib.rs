//! # ptstore-attacks
//!
//! The security evaluation of the paper (§II-B, §V-E) as an executable attack
//! battery. Each attack is written from the attacker's point of view under
//! the §III-A threat model — a non-root process wielding a repeated
//! arbitrary-read/write kernel memory-corruption primitive issued through
//! regular instructions — and reports *how far it got* against the deployed
//! defense:
//!
//! | attack | defeated by (PTStore layer) |
//! |---|---|
//! | PT-Tampering (§II-B) | secure region S-bit: regular stores fault |
//! | PT-Injection (§II-B) | PTW origin check (`satp.S`); tokens also fire first |
//! | PT-Reuse (§II-B) | token mechanism |
//! | Allocator metadata (§V-E3) | zero-check on fresh page-table pages |
//! | VM metadata (§V-E4) | n/a — only user-space mappings affected |
//! | TLB inconsistency (§V-E5) | PMP checks physical addresses |
//! | Huge-page tampering | secure region S-bit — a level-1 superpage leaf is a secure PTE like any other |
//!
//! ```
//! use ptstore_attacks::{run_attack, AttackKind};
//! use ptstore_kernel::DefenseMode;
//!
//! let report = run_attack(AttackKind::PtTampering, DefenseMode::PtStore, true);
//! assert!(!report.outcome.attacker_won());
//! ```

pub mod battery;
pub mod outcome;
pub mod scenarios;

pub use battery::{
    run_attack, run_attack_on, run_attack_on_scheme, run_attack_on_with_fast_path,
    run_attack_traced, security_matrix, security_matrix_traced, security_matrix_with,
    security_matrix_with_harts, AttackReport, TracedAttackReport,
};
pub use outcome::{AttackOutcome, BlockedBy};
pub use scenarios::AttackKind;
