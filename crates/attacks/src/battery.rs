//! The attack × defense matrix driver (paper §V-E).

use core::fmt;

use ptstore_core::{PagingScheme, MIB};
use ptstore_kernel::{DefenseMode, Kernel, KernelConfig};
use ptstore_trace::json::{array, JsonWriter};
use ptstore_trace::{RejectingLayer, TraceCounters, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};

use crate::outcome::AttackOutcome;
use crate::scenarios::{run, AttackKind};

/// One cell of the security matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackReport {
    /// Which attack ran.
    pub attack: AttackKind,
    /// Against which defense.
    pub defense: DefenseMode,
    /// Whether the token layer was enabled (ablation).
    pub tokens: bool,
    /// What happened.
    pub outcome: AttackOutcome,
}

impl fmt::Display for AttackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<20} vs {:<18} -> {}",
            self.attack.to_string(),
            self.defense.to_string(),
            self.outcome
        )
    }
}

fn attack_config(defense: DefenseMode, tokens: bool, harts: usize) -> KernelConfig {
    attack_config_scheme(defense, tokens, harts, PagingScheme::Sv39)
}

fn attack_config_scheme(
    defense: DefenseMode,
    tokens: bool,
    harts: usize,
    scheme: PagingScheme,
) -> KernelConfig {
    let mut cfg = KernelConfig::baseline()
        .with_defense(defense)
        .with_mem_size(256 * MIB)
        .with_initial_secure_size(16 * MIB)
        .with_harts(harts)
        .with_scheme(scheme);
    cfg.cfi = true; // the threat model deploys CFI
    cfg.token_checks = tokens;
    cfg
}

/// One matrix cell plus the event chain captured while the scenario ran.
///
/// The sink is attached *after* boot, so `events` is exactly the forensic
/// record of the attack itself: the bus/PMP/walker/token decisions in
/// program order, ending (for a denied attack) with the event whose
/// [`rejecting_layer`](TraceEvent::rejecting_layer) names the check that
/// stopped it.
#[derive(Debug, Clone)]
pub struct TracedAttackReport {
    /// The cell verdict, identical to what [`run_attack`] returns.
    pub report: AttackReport,
    /// The scenario's event chain, oldest first.
    pub events: Vec<TraceEvent>,
    /// Per-layer totals over the whole scenario (survive ring eviction).
    pub counters: TraceCounters,
}

impl TracedAttackReport {
    /// The check that finally rejected the attack, per the trace: the last
    /// denial event's attribution. `None` for attacks that succeeded (or
    /// never tripped a check).
    pub fn rejecting_layer(&self) -> Option<RejectingLayer> {
        self.events
            .iter()
            .rev()
            .find_map(TraceEvent::rejecting_layer)
    }

    /// Serialises the cell (verdict + attribution + counters + events) as
    /// one JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.str_field("attack", &self.report.attack.to_string());
        w.str_field("defense", &self.report.defense.to_string());
        w.bool_field("tokens", self.report.tokens);
        w.str_field("outcome", &self.report.outcome.to_string());
        match self.rejecting_layer() {
            Some(layer) => w.str_field("rejecting_layer", &layer.to_string()),
            None => w.null_field("rejecting_layer"),
        }
        w.raw_field("counters", &self.counters.to_json());
        w.raw_field(
            "events",
            &array(self.events.iter().map(TraceEvent::to_json)),
        );
        w.finish()
    }
}

/// Boots a fresh kernel and runs one attack against one defense.
pub fn run_attack(kind: AttackKind, defense: DefenseMode, tokens: bool) -> AttackReport {
    run_attack_on(1, kind, defense, tokens)
}

/// Like [`run_attack`], but on an `harts`-way SMP machine. The attacker
/// runs on the boot hart while the remote harts participate in every
/// shootdown — the defense verdict must not depend on the hart count.
pub fn run_attack_on(
    harts: usize,
    kind: AttackKind,
    defense: DefenseMode,
    tokens: bool,
) -> AttackReport {
    run_attack_on_scheme(harts, PagingScheme::Sv39, kind, defense, tokens)
}

/// Like [`run_attack_on`], but under an explicit paging scheme. The verdict
/// must be scheme-independent — PTStore's checks fire on physical addresses
/// and credentials, not on how many levels the walk has — which the
/// scheme-differential suite asserts cell for cell.
pub fn run_attack_on_scheme(
    harts: usize,
    scheme: PagingScheme,
    kind: AttackKind,
    defense: DefenseMode,
    tokens: bool,
) -> AttackReport {
    let mut k =
        Kernel::boot(attack_config_scheme(defense, tokens, harts, scheme)).expect("kernel boots");
    let outcome = run(kind, &mut k);
    AttackReport {
        attack: kind,
        defense,
        tokens,
        outcome,
    }
}

/// Like [`run_attack_on`], but with the host-side fast paths (PMP page
/// cache, micro-TLB) forced on or off right after boot. The verdict must
/// be identical either way — the fast paths are wall-clock memoizations,
/// not model changes — which the differential tests assert.
pub fn run_attack_on_with_fast_path(
    harts: usize,
    kind: AttackKind,
    defense: DefenseMode,
    tokens: bool,
    fast_path: bool,
) -> AttackReport {
    let mut k = Kernel::boot(attack_config(defense, tokens, harts)).expect("kernel boots");
    k.set_fast_paths(fast_path);
    let outcome = run(kind, &mut k);
    AttackReport {
        attack: kind,
        defense,
        tokens,
        outcome,
    }
}

/// Like [`run_attack`], but with a [`TraceSink`] attached for the duration
/// of the scenario, returning the captured event chain alongside the
/// verdict.
pub fn run_attack_traced(
    kind: AttackKind,
    defense: DefenseMode,
    tokens: bool,
) -> TracedAttackReport {
    let mut k = Kernel::boot(attack_config(defense, tokens, 1)).expect("kernel boots");
    let sink = TraceSink::new();
    k.set_trace_sink(Some(sink.clone()));
    let outcome = run(kind, &mut k);
    k.set_trace_sink(None);
    TracedAttackReport {
        report: AttackReport {
            attack: kind,
            defense,
            tokens,
            outcome,
        },
        events: sink.events(),
        counters: sink.counters(),
    }
}

/// The full §V-E matrix: every attack against every defense (fresh kernel
/// per cell), plus the tokens-off PTStore ablation rows.
pub fn security_matrix() -> Vec<AttackReport> {
    security_matrix_with_harts(1)
}

/// The full matrix on an `harts`-way SMP machine (every cell boots a fresh
/// N-hart kernel). `security_matrix()` is the `harts == 1` case.
pub fn security_matrix_with_harts(harts: usize) -> Vec<AttackReport> {
    security_matrix_with(harts, PagingScheme::Sv39)
}

/// The full matrix under an explicit paging scheme on an `harts`-way SMP
/// machine. The scheme-differential suite runs this for Sv39/Sv48/Sv57 and
/// demands byte-identical verdicts.
pub fn security_matrix_with(harts: usize, scheme: PagingScheme) -> Vec<AttackReport> {
    let mut out = Vec::new();
    for defense in [
        DefenseMode::None,
        DefenseMode::PtRand,
        DefenseMode::VirtualIsolation,
        DefenseMode::PtStore,
    ] {
        for kind in AttackKind::ALL {
            out.push(run_attack_on_scheme(harts, scheme, kind, defense, true));
        }
    }
    // Ablation: PTStore with the token layer disabled — shows which attacks
    // the secure region + PTW check alone cannot stop.
    for kind in AttackKind::ALL {
        let mut r = run_attack_on_scheme(harts, scheme, kind, DefenseMode::PtStore, false);
        r.tokens = false;
        out.push(r);
    }
    out
}

/// The PTStore rows of the matrix with a trace attached to every cell
/// (full design and tokens-off ablation). Tracing the defended rows is
/// what the forensic question needs: *which* check stopped each attack.
pub fn security_matrix_traced() -> Vec<TracedAttackReport> {
    let mut out = Vec::new();
    for tokens in [true, false] {
        for kind in AttackKind::ALL {
            out.push(run_attack_traced(kind, DefenseMode::PtStore, tokens));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::BlockedBy;

    #[test]
    fn ptstore_blocks_all_attacks_on_smp_machines() {
        for harts in [1, 2, 4] {
            for kind in AttackKind::ALL {
                let r = run_attack_on(harts, kind, DefenseMode::PtStore, true);
                assert!(
                    !r.outcome.attacker_won(),
                    "PTStore must stop {kind} on {harts} harts, got {}",
                    r.outcome
                );
            }
        }
    }

    #[test]
    fn smp_verdicts_match_single_hart() {
        // The whole matrix, cell for cell, is hart-count independent.
        let base = security_matrix();
        for harts in [2, 4] {
            let smp = security_matrix_with_harts(harts);
            assert_eq!(base.len(), smp.len());
            for (b, m) in base.iter().zip(&smp) {
                assert_eq!(
                    b.outcome, m.outcome,
                    "{} vs {} diverged at {harts} harts",
                    b.attack, b.defense
                );
            }
        }
    }

    #[test]
    fn undefended_kernel_falls_to_everything_harmful() {
        for kind in [
            AttackKind::PtTampering,
            AttackKind::PtInjection,
            AttackKind::PtReuse,
            AttackKind::AllocatorMetadata,
            AttackKind::TlbInconsistency,
            AttackKind::HugePageTampering,
        ] {
            let r = run_attack(kind, DefenseMode::None, true);
            assert!(
                r.outcome.attacker_won(),
                "{kind} should succeed without defenses, got {}",
                r.outcome
            );
        }
    }

    #[test]
    fn ptstore_blocks_all_attacks() {
        for kind in AttackKind::ALL {
            let r = run_attack(kind, DefenseMode::PtStore, true);
            assert!(
                !r.outcome.attacker_won(),
                "PTStore must stop {kind}, got {}",
                r.outcome
            );
        }
    }

    #[test]
    fn ptstore_layers_match_paper() {
        assert_eq!(
            run_attack(AttackKind::PtTampering, DefenseMode::PtStore, true).outcome,
            AttackOutcome::Blocked(BlockedBy::SecureRegionPmp)
        );
        // With tokens on, the credential check fires before the walker even
        // sees the fake table.
        assert_eq!(
            run_attack(AttackKind::PtInjection, DefenseMode::PtStore, true).outcome,
            AttackOutcome::Blocked(BlockedBy::TokenCheck)
        );
        // With tokens off, the PTW origin check is the backstop.
        assert_eq!(
            run_attack(AttackKind::PtInjection, DefenseMode::PtStore, false).outcome,
            AttackOutcome::Blocked(BlockedBy::PtwOriginCheck)
        );
        assert_eq!(
            run_attack(AttackKind::PtReuse, DefenseMode::PtStore, true).outcome,
            AttackOutcome::Blocked(BlockedBy::TokenCheck)
        );
        assert_eq!(
            run_attack(AttackKind::AllocatorMetadata, DefenseMode::PtStore, true).outcome,
            AttackOutcome::Blocked(BlockedBy::ZeroCheck)
        );
        assert_eq!(
            run_attack(AttackKind::TlbInconsistency, DefenseMode::PtStore, true).outcome,
            AttackOutcome::Blocked(BlockedBy::SecureRegionPmp)
        );
        // A level-1 superpage leaf lives in a secure-region table like any
        // other PTE — the S-bit fires regardless of the slot's level.
        assert_eq!(
            run_attack(AttackKind::HugePageTampering, DefenseMode::PtStore, true).outcome,
            AttackOutcome::Blocked(BlockedBy::SecureRegionPmp)
        );
    }

    #[test]
    fn reuse_defeats_ptstore_without_tokens() {
        // The ablation that justifies the token mechanism: secure region +
        // PTW check alone cannot stop PT-Reuse (the reused table is a real
        // secure-region page table).
        let r = run_attack(AttackKind::PtReuse, DefenseMode::PtStore, false);
        assert!(r.outcome.attacker_won());
    }

    #[test]
    fn pt_rand_falls_via_leak() {
        for kind in [AttackKind::PtTampering, AttackKind::HugePageTampering] {
            let r = run_attack(kind, DefenseMode::PtRand, true);
            assert_eq!(r.outcome, AttackOutcome::SucceededViaLeak, "{kind}");
        }
    }

    #[test]
    fn virtual_isolation_partial_coverage() {
        // Blocks direct tampering...
        assert_eq!(
            run_attack(AttackKind::PtTampering, DefenseMode::VirtualIsolation, true).outcome,
            AttackOutcome::Blocked(BlockedBy::PagePermissions)
        );
        // ...but not injection, reuse, or TLB-inconsistency.
        for kind in [
            AttackKind::PtInjection,
            AttackKind::PtReuse,
            AttackKind::TlbInconsistency,
        ] {
            let r = run_attack(kind, DefenseMode::VirtualIsolation, true);
            assert!(
                r.outcome.attacker_won(),
                "virtual isolation should fall to {kind}, got {}",
                r.outcome
            );
        }
    }

    #[test]
    fn vm_metadata_is_kernel_harmless_everywhere() {
        for defense in [DefenseMode::None, DefenseMode::PtStore] {
            let r = run_attack(AttackKind::VmMetadata, defense, true);
            assert_eq!(r.outcome, AttackOutcome::HarmlessToKernel);
        }
    }

    #[test]
    fn denied_pt_injection_trace_names_the_ptw_origin_check() {
        // The §V-E2 ablation: with tokens off, the walker's `satp.S` origin
        // check is the backstop — and the trace must say so. The final
        // denial in the event chain is the check that actually fired.
        let t = run_attack_traced(AttackKind::PtInjection, DefenseMode::PtStore, false);
        assert_eq!(
            t.report.outcome,
            AttackOutcome::Blocked(BlockedBy::PtwOriginCheck)
        );
        assert_eq!(t.rejecting_layer(), Some(RejectingLayer::PtwOriginCheck));
        assert!(t.counters.ptw_origin_rejections >= 1);
        let j = t.to_json();
        assert!(
            j.contains("\"rejecting_layer\":\"ptw-origin-check\""),
            "{j}"
        );
    }

    #[test]
    fn trace_attribution_matches_the_outcome_layer() {
        // Full design: the trace's final denial and the scenario's reported
        // blocking layer agree for the paper's three PTStore checks.
        for (kind, layer) in [
            (AttackKind::PtTampering, RejectingLayer::PmpSBit),
            (AttackKind::PtInjection, RejectingLayer::TokenValidation),
            (AttackKind::PtReuse, RejectingLayer::TokenValidation),
            (AttackKind::HugePageTampering, RejectingLayer::PmpSBit),
        ] {
            let t = run_attack_traced(kind, DefenseMode::PtStore, true);
            assert!(!t.report.outcome.attacker_won(), "{kind} must be blocked");
            assert_eq!(
                t.rejecting_layer(),
                Some(layer),
                "{kind}: trace should attribute the denial to {layer}"
            );
        }
    }

    #[test]
    fn traced_run_agrees_with_untraced_run() {
        // Attaching a sink observes the machine without perturbing it.
        for kind in AttackKind::ALL {
            let plain = run_attack(kind, DefenseMode::PtStore, true);
            let traced = run_attack_traced(kind, DefenseMode::PtStore, true);
            assert_eq!(plain.outcome, traced.report.outcome, "{kind}");
        }
    }

    #[test]
    fn matrix_covers_all_cells() {
        let m = security_matrix();
        // Every attack × (4 defenses + the tokens-off PTStore ablation row).
        assert_eq!(m.len(), AttackKind::ALL.len() * 5);
        // PTStore full-design rows never lose.
        assert!(m
            .iter()
            .filter(|r| r.defense == DefenseMode::PtStore && r.tokens)
            .all(|r| !r.outcome.attacker_won()));
    }
}
