//! The attack × defense matrix driver (paper §V-E).

use core::fmt;

use ptstore_core::MIB;
use ptstore_kernel::{DefenseMode, Kernel, KernelConfig};
use serde::{Deserialize, Serialize};

use crate::outcome::AttackOutcome;
use crate::scenarios::{run, AttackKind};

/// One cell of the security matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackReport {
    /// Which attack ran.
    pub attack: AttackKind,
    /// Against which defense.
    pub defense: DefenseMode,
    /// Whether the token layer was enabled (ablation).
    pub tokens: bool,
    /// What happened.
    pub outcome: AttackOutcome,
}

impl fmt::Display for AttackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<20} vs {:<18} -> {}",
            self.attack.to_string(),
            self.defense.to_string(),
            self.outcome
        )
    }
}

fn attack_config(defense: DefenseMode, tokens: bool) -> KernelConfig {
    let mut cfg = KernelConfig::baseline()
        .with_defense(defense)
        .with_mem_size(256 * MIB)
        .with_initial_secure_size(16 * MIB);
    cfg.cfi = true; // the threat model deploys CFI
    cfg.token_checks = tokens;
    cfg
}

/// Boots a fresh kernel and runs one attack against one defense.
pub fn run_attack(kind: AttackKind, defense: DefenseMode, tokens: bool) -> AttackReport {
    let mut k = Kernel::boot(attack_config(defense, tokens)).expect("kernel boots");
    let outcome = run(kind, &mut k);
    AttackReport {
        attack: kind,
        defense,
        tokens,
        outcome,
    }
}

/// The full §V-E matrix: every attack against every defense (fresh kernel
/// per cell), plus the tokens-off PTStore ablation rows.
pub fn security_matrix() -> Vec<AttackReport> {
    let mut out = Vec::new();
    for defense in [
        DefenseMode::None,
        DefenseMode::PtRand,
        DefenseMode::VirtualIsolation,
        DefenseMode::PtStore,
    ] {
        for kind in AttackKind::ALL {
            out.push(run_attack(kind, defense, true));
        }
    }
    // Ablation: PTStore with the token layer disabled — shows which attacks
    // the secure region + PTW check alone cannot stop.
    for kind in AttackKind::ALL {
        let mut r = run_attack(kind, DefenseMode::PtStore, false);
        r.tokens = false;
        out.push(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::BlockedBy;

    #[test]
    fn undefended_kernel_falls_to_everything_harmful() {
        for kind in [
            AttackKind::PtTampering,
            AttackKind::PtInjection,
            AttackKind::PtReuse,
            AttackKind::AllocatorMetadata,
            AttackKind::TlbInconsistency,
        ] {
            let r = run_attack(kind, DefenseMode::None, true);
            assert!(
                r.outcome.attacker_won(),
                "{kind} should succeed without defenses, got {}",
                r.outcome
            );
        }
    }

    #[test]
    fn ptstore_blocks_all_attacks() {
        for kind in AttackKind::ALL {
            let r = run_attack(kind, DefenseMode::PtStore, true);
            assert!(
                !r.outcome.attacker_won(),
                "PTStore must stop {kind}, got {}",
                r.outcome
            );
        }
    }

    #[test]
    fn ptstore_layers_match_paper() {
        assert_eq!(
            run_attack(AttackKind::PtTampering, DefenseMode::PtStore, true).outcome,
            AttackOutcome::Blocked(BlockedBy::SecureRegionPmp)
        );
        // With tokens on, the credential check fires before the walker even
        // sees the fake table.
        assert_eq!(
            run_attack(AttackKind::PtInjection, DefenseMode::PtStore, true).outcome,
            AttackOutcome::Blocked(BlockedBy::TokenCheck)
        );
        // With tokens off, the PTW origin check is the backstop.
        assert_eq!(
            run_attack(AttackKind::PtInjection, DefenseMode::PtStore, false).outcome,
            AttackOutcome::Blocked(BlockedBy::PtwOriginCheck)
        );
        assert_eq!(
            run_attack(AttackKind::PtReuse, DefenseMode::PtStore, true).outcome,
            AttackOutcome::Blocked(BlockedBy::TokenCheck)
        );
        assert_eq!(
            run_attack(AttackKind::AllocatorMetadata, DefenseMode::PtStore, true).outcome,
            AttackOutcome::Blocked(BlockedBy::ZeroCheck)
        );
        assert_eq!(
            run_attack(AttackKind::TlbInconsistency, DefenseMode::PtStore, true).outcome,
            AttackOutcome::Blocked(BlockedBy::SecureRegionPmp)
        );
    }

    #[test]
    fn reuse_defeats_ptstore_without_tokens() {
        // The ablation that justifies the token mechanism: secure region +
        // PTW check alone cannot stop PT-Reuse (the reused table is a real
        // secure-region page table).
        let r = run_attack(AttackKind::PtReuse, DefenseMode::PtStore, false);
        assert!(r.outcome.attacker_won());
    }

    #[test]
    fn pt_rand_falls_via_leak() {
        let r = run_attack(AttackKind::PtTampering, DefenseMode::PtRand, true);
        assert_eq!(r.outcome, AttackOutcome::SucceededViaLeak);
    }

    #[test]
    fn virtual_isolation_partial_coverage() {
        // Blocks direct tampering...
        assert_eq!(
            run_attack(AttackKind::PtTampering, DefenseMode::VirtualIsolation, true).outcome,
            AttackOutcome::Blocked(BlockedBy::PagePermissions)
        );
        // ...but not injection, reuse, or TLB-inconsistency.
        for kind in [
            AttackKind::PtInjection,
            AttackKind::PtReuse,
            AttackKind::TlbInconsistency,
        ] {
            let r = run_attack(kind, DefenseMode::VirtualIsolation, true);
            assert!(
                r.outcome.attacker_won(),
                "virtual isolation should fall to {kind}, got {}",
                r.outcome
            );
        }
    }

    #[test]
    fn vm_metadata_is_kernel_harmless_everywhere() {
        for defense in [DefenseMode::None, DefenseMode::PtStore] {
            let r = run_attack(AttackKind::VmMetadata, defense, true);
            assert_eq!(r.outcome, AttackOutcome::HarmlessToKernel);
        }
    }

    #[test]
    fn matrix_covers_all_cells() {
        let m = security_matrix();
        assert_eq!(m.len(), 8 * 4 + 8);
        // PTStore full-design rows never lose.
        assert!(m
            .iter()
            .filter(|r| r.defense == DefenseMode::PtStore && r.tokens)
            .all(|r| !r.outcome.attacker_won()));
    }
}
