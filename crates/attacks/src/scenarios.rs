//! The attack scenarios of the paper (§II-B, §V-E), plus two extras the
//! design implies, written from the attacker's seat.

use core::fmt;

use ptstore_core::{PhysAddr, VirtAddr, MIB};
use ptstore_kernel::pagetable::USER_TEXT_BASE;
use ptstore_kernel::process::{VmPerms, PCB_OFF_PT_PTR, PCB_OFF_TOKEN_PTR};
use ptstore_kernel::{AttackerFault, DefenseMode, Kernel, KernelError};
use serde::{Deserialize, Serialize};

use crate::outcome::{AttackOutcome, BlockedBy};

/// The attack classes of §II-B and §V-E.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Flip permission bits / remap pages by writing PTEs directly.
    PtTampering,
    /// Point a PCB's page-table pointer at a crafted fake table.
    PtInjection,
    /// Point a victim PCB's page-table pointer at another process's table.
    PtReuse,
    /// Corrupt allocator metadata to overlap a new page table with a live
    /// one (§V-E3).
    AllocatorMetadata,
    /// Corrupt VM-area metadata so the kernel composes malicious PTEs
    /// (§V-E4).
    VmMetadata,
    /// Exploit a stale writable TLB entry to dodge virtual-memory-based
    /// protections (§V-E5).
    TlbInconsistency,
    /// Point the page-table pointer at *non-page-table data inside the
    /// secure region* (a token page) so the walker consumes it (§V-E2).
    SecureDataReuse,
    /// Forge a token in normal memory and point the PCB's token pointer at
    /// it — tokens are only credible because they live in the secure region.
    TokenForging,
    /// Overwrite a 2 MiB superpage leaf (a level-1 PTE) so one corrupted
    /// slot redirects an entire 2 MiB of translations at physical page 0 —
    /// the highest-leverage single-PTE write the paging structure offers.
    HugePageTampering,
}

impl AttackKind {
    /// All nine, in paper order (§II-B attacks then the §V-E extras, then
    /// the superpage variant the generic paging API makes expressible).
    pub const ALL: [AttackKind; 9] = [
        AttackKind::PtTampering,
        AttackKind::PtInjection,
        AttackKind::PtReuse,
        AttackKind::AllocatorMetadata,
        AttackKind::VmMetadata,
        AttackKind::TlbInconsistency,
        AttackKind::SecureDataReuse,
        AttackKind::TokenForging,
        AttackKind::HugePageTampering,
    ];
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AttackKind::PtTampering => "PT-Tampering",
            AttackKind::PtInjection => "PT-Injection",
            AttackKind::PtReuse => "PT-Reuse",
            AttackKind::AllocatorMetadata => "Allocator metadata",
            AttackKind::VmMetadata => "VM metadata",
            AttackKind::TlbInconsistency => "TLB inconsistency",
            AttackKind::SecureDataReuse => "Secure-data reuse",
            AttackKind::TokenForging => "Token forging",
            AttackKind::HugePageTampering => "Huge-page tampering",
        })
    }
}

/// PT-Tampering: write the victim's text-page PTE through the kernel direct
/// map, flipping the W bit so "immutable" code becomes writable (the DEP
/// bypass of §I / §II-B).
pub fn pt_tampering(k: &mut Kernel) -> AttackOutcome {
    let victim = k.current_pid();
    let pte_pa = k
        .pte_phys_addr(victim, VirtAddr::new(USER_TEXT_BASE))
        .expect("victim text is mapped");
    let before = k.read_pte_raw(pte_pa).expect("kernel can read its own PTE");
    let tampered = before | 0b100; // set W
    let dm = k.direct_map(pte_pa);

    match k.attacker_write_u64(dm, tampered) {
        Ok(()) => {
            let after = k.read_pte_raw(pte_pa).expect("readable");
            debug_assert_eq!(after, tampered, "write landed");
            AttackOutcome::Succeeded
        }
        Err(f) if f.is_ptstore() => AttackOutcome::Blocked(BlockedBy::SecureRegionPmp),
        Err(AttackerFault::PageFault) => match k.cfg.defense {
            DefenseMode::VirtualIsolation => AttackOutcome::Blocked(BlockedBy::PagePermissions),
            DefenseMode::PtRand => {
                // Randomisation fell to information disclosure (§VI-1): leak
                // the window offset, then write through the window.
                let window = match k.attacker_leak_pt_rand_window() {
                    Ok(w) => w,
                    Err(_) => return AttackOutcome::Blocked(BlockedBy::UnmappedTarget),
                };
                let via = VirtAddr::new(window + pte_pa.as_u64());
                match k.attacker_write_u64(via, tampered) {
                    Ok(()) => AttackOutcome::SucceededViaLeak,
                    Err(_) => AttackOutcome::Blocked(BlockedBy::UnmappedTarget),
                }
            }
            _ => AttackOutcome::Blocked(BlockedBy::UnmappedTarget),
        },
        Err(AttackerFault::AccessFault(_)) => AttackOutcome::Blocked(BlockedBy::SecureRegionPmp),
    }
}

/// PT-Injection: craft a fake root page table in normal memory (a 1 GiB
/// user-RWX identity superpage), hijack the victim's PCB page-table pointer,
/// and wait for the kernel to load it into `satp`.
pub fn pt_injection(k: &mut Kernel) -> AttackOutcome {
    let victim = k.current_pid();

    // Step 1: the attacker sprays a fake page table into memory they can
    // reach — a page of their own address space whose physical address they
    // learned. (mmap + touch + leak.)
    let user_page = k.sys_mmap(ptstore_core::PAGE_SIZE).expect("mmap");
    let fake_root_pa = k
        .touch_user(user_page, ptstore_core::AccessKind::Write)
        .expect("touch")
        .page_align_down();
    // Fake PTE: VPN2 slot 0 → 1 GiB superpage at PA 0, user RWX.
    let fake_pte = 0xdf; // ppn=0 | D A - U X W R V
    let dm = k.direct_map(fake_root_pa);
    if k.attacker_write_u64(dm, fake_pte).is_err() {
        // Can't even build the fake table (not the defense the paper
        // credits, but record it faithfully).
        return AttackOutcome::Blocked(BlockedBy::UnmappedTarget);
    }

    // Step 2: hijack the PCB's page-table pointer (always possible — PCBs
    // live in normal memory).
    let pcb = k.pcb_addr(victim).expect("victim exists");
    let pt_slot_va = k.direct_map(pcb + PCB_OFF_PT_PTR);
    k.attacker_write_u64(pt_slot_va, fake_root_pa.as_u64())
        .expect("PCB fields are attackable in every mode");

    // Step 3: the kernel switches to the victim.
    match k.activate_address_space(victim) {
        Err(KernelError::TokenInvalid(_)) => return AttackOutcome::Blocked(BlockedBy::TokenCheck),
        Err(e) => panic!("unexpected switch_mm error: {e}"),
        Ok(()) => {}
    }

    // Step 4: the fake table is live in satp; the next translation decides.
    let probe = VirtAddr::new(0x3000);
    match k.touch_user(probe, ptstore_core::AccessKind::Read) {
        Ok(pa) => {
            debug_assert_eq!(pa, PhysAddr::new(0x3000), "identity superpage used");
            AttackOutcome::Succeeded
        }
        Err(KernelError::Access(e)) if e.is_ptstore_fault() => {
            AttackOutcome::Blocked(BlockedBy::PtwOriginCheck)
        }
        Err(_) => AttackOutcome::Blocked(BlockedBy::UnmappedTarget),
    }
}

/// PT-Reuse: replace a victim's page-table pointer with the attacker
/// process's own, so the victim (imagine it root-privileged) executes under
/// the attacker's address space. The sophisticated variant also copies the
/// attacker's token pointer — the token's back-pointer still gives it away.
pub fn pt_reuse(k: &mut Kernel) -> AttackOutcome {
    // Two processes: a victim and the attacker's.
    let victim = k.sys_fork().expect("spawn victim");
    let attacker = k.sys_fork().expect("spawn attacker process");

    let victim_pcb = k.pcb_addr(victim).expect("victim exists");
    let attacker_pcb = k.pcb_addr(attacker).expect("attacker exists");

    // Arbitrary-read the attacker's pt pointer and token pointer.
    let att_pt = k
        .attacker_read_u64(k.direct_map(attacker_pcb + PCB_OFF_PT_PTR))
        .expect("PCBs are readable");
    let att_token = k
        .attacker_read_u64(k.direct_map(attacker_pcb + PCB_OFF_TOKEN_PTR))
        .expect("PCBs are readable");

    // Arbitrary-write them into the victim's PCB.
    k.attacker_write_u64(k.direct_map(victim_pcb + PCB_OFF_PT_PTR), att_pt)
        .expect("PCBs are writable");
    k.attacker_write_u64(k.direct_map(victim_pcb + PCB_OFF_TOKEN_PTR), att_token)
        .expect("PCBs are writable");

    // The kernel schedules the victim.
    match k.do_switch_to(victim) {
        Err(KernelError::TokenInvalid(_)) => AttackOutcome::Blocked(BlockedBy::TokenCheck),
        Err(e) => panic!("unexpected switch error: {e}"),
        Ok(()) => {
            // Victim now runs on the attacker's page tables.
            let root = k.mmu().satp.root_ppn.base_addr().as_u64();
            debug_assert_eq!(root, att_pt & !0xfff);
            AttackOutcome::Succeeded
        }
    }
}

/// Allocator-metadata attack (§V-E3): corrupt the allocator so the next
/// page-table allocation overlaps a live page table, then trigger it via
/// `fork`.
pub fn allocator_metadata(k: &mut Kernel) -> AttackOutcome {
    let victim_root = k.process_root(k.current_pid()).expect("victim exists");
    // The modelled metadata corruption: the free lists now hand out the
    // victim's root page.
    k.inject_allocator_overlap(victim_root);
    match k.sys_fork() {
        Err(KernelError::PageNotZero) => AttackOutcome::Blocked(BlockedBy::ZeroCheck),
        // Either the fork completed on the overlapped page, or it destroyed
        // the victim's live page table mid-way (observed as a bad-address
        // failure while copying mappings) — both mean the overlap landed.
        Ok(_) | Err(KernelError::BadAddress) => AttackOutcome::Succeeded,
        Err(e) => panic!("unexpected fork error: {e}"),
    }
}

/// VM-metadata attack (§V-E4): corrupt a victim VMA's permissions so the
/// kernel later composes attacker-chosen PTEs. The paper's observation: VMAs
/// describe *user-space* memory only, so the kernel address space — and
/// PTStore's protection — are unaffected.
pub fn vm_metadata(k: &mut Kernel) -> AttackOutcome {
    let victim = k.current_pid();
    // Corrupt the stack VMA to RWX (the modelled mm-metadata corruption).
    {
        let p = k.procs.get_mut(victim).expect("victim exists");
        let stack_va = VirtAddr::new(ptstore_kernel::pagetable::USER_STACK_TOP - 0x800);
        let vma = p.vma_for_mut(stack_va).expect("stack vma");
        vma.perms = VmPerms {
            read: true,
            write: true,
            exec: true,
        };
    }
    // Kernel faults in a fresh stack page from the tampered metadata.
    let grow_va = VirtAddr::new(
        ptstore_kernel::pagetable::USER_STACK_TOP
            - ptstore_kernel::pagetable::USER_STACK_PAGES * ptstore_core::PAGE_SIZE,
    );
    // Unmap-then-touch isn't needed: touch an unpopulated stack page? All
    // eager stack pages exist, so retouch the lowest one after unmapping is
    // modelled by extending the VMA downward instead:
    {
        let p = k.procs.get_mut(victim).expect("victim exists");
        let vma = p.vma_for_mut(grow_va).expect("stack vma");
        vma.start -= ptstore_core::PAGE_SIZE;
    }
    let fresh = VirtAddr::new(grow_va.as_u64() - 0x1000);
    k.touch_user(fresh, ptstore_core::AccessKind::Write)
        .expect("demand map from tampered vma");
    // The composed PTE is user-RWX — nasty for the process, irrelevant for
    // the kernel: it cannot map kernel addresses or the secure region.
    let mapping = k
        .procs
        .get(victim)
        .and_then(|p| p.aspace.mapping(fresh))
        .expect("mapped");
    debug_assert!(mapping.flags.user() && mapping.flags.executable());
    AttackOutcome::HarmlessToKernel
}

/// TLB-inconsistency attack (§V-E5): a (buggy) missing `sfence.vma` left the
/// attacker a stale *writable* D-TLB translation onto a physical page that
/// now holds a page table. VM-based defenses never see the write; PTStore's
/// PMP checks the physical address at access time.
pub fn tlb_inconsistency(k: &mut Kernel) -> AttackOutcome {
    let victim = k.current_pid();
    let pte_pa = k
        .pte_phys_addr(victim, VirtAddr::new(USER_TEXT_BASE))
        .expect("victim text mapped");
    let before = k.read_pte_raw(pte_pa).expect("readable");
    // The stale TLB entry already translated the attacker's VA to `pte_pa`;
    // only the physical access remains.
    match k.attacker_write_phys_via_stale_tlb(pte_pa, before | 0b100) {
        Ok(()) => AttackOutcome::Succeeded,
        Err(f) if f.is_ptstore() => AttackOutcome::Blocked(BlockedBy::SecureRegionPmp),
        Err(_) => AttackOutcome::Blocked(BlockedBy::PagePermissions),
    }
}

/// Secure-data reuse (§V-E2): instead of injecting a fake table in normal
/// memory, point the victim's page-table pointer at *existing data in the
/// secure region* — a token page. The PTW origin check passes (the page IS
/// in the region), but every token field is an 8-byte-aligned pointer, so
/// as PTEs their present bits are clear and translation still fails.
pub fn secure_data_reuse(k: &mut Kernel) -> AttackOutcome {
    // Without a secure region the notion degenerates to ordinary injection
    // of attacker-reachable data — run that equivalent instead.
    if k.secure_region().is_none() {
        return pt_injection(k);
    }
    let victim = k.current_pid();
    // The attacker learns the token page address by reading the victim's
    // PCB token pointer (normal memory, always readable).
    let pcb = k.pcb_addr(victim).expect("victim exists");
    let token_ptr = match k.attacker_read_u64(k.direct_map(pcb + PCB_OFF_TOKEN_PTR)) {
        Ok(v) if v != 0 => PhysAddr::new(v),
        _ => return AttackOutcome::Blocked(BlockedBy::UnmappedTarget),
    };
    let fake_root_page = token_ptr.page_align_down();
    k.attacker_write_u64(k.direct_map(pcb + PCB_OFF_PT_PTR), fake_root_page.as_u64())
        .expect("PCB fields are attackable in every mode");

    match k.activate_address_space(victim) {
        Err(KernelError::TokenInvalid(_)) => return AttackOutcome::Blocked(BlockedBy::TokenCheck),
        Err(e) => panic!("unexpected switch_mm error: {e}"),
        Ok(()) => {}
    }
    // The walker now consumes the data page as a root table.
    match k.touch_user(VirtAddr::new(0x3000), ptstore_core::AccessKind::Read) {
        Ok(_) => AttackOutcome::Succeeded,
        Err(KernelError::Access(e)) if e.is_ptstore_fault() => {
            AttackOutcome::Blocked(BlockedBy::PtwOriginCheck)
        }
        // §V-E2: pointer-valued fields have V=0 — invalid PTEs, page fault.
        Err(KernelError::SegFault) => AttackOutcome::Blocked(BlockedBy::InvalidAsPte),
        Err(e) => panic!("unexpected probe error: {e}"),
    }
}

/// Token forging: the attacker builds a perfectly *consistent* fake token
/// in memory they can write — `{pt_ptr: fake_root, user_ptr: victim_slot}` —
/// and points the victim PCB's token pointer at it alongside the hijacked
/// page-table pointer. If the kernel trusted any memory as token storage,
/// this would pass validation; PTStore only accepts tokens read with
/// `ld.pt` from the secure region, which the attacker cannot write.
pub fn token_forging(k: &mut Kernel) -> AttackOutcome {
    if k.secure_region().is_none() {
        // Baselines have no token mechanism at all: the equivalent is plain
        // injection, which succeeds.
        return pt_injection(k);
    }
    let victim = k.current_pid();
    // Attacker-reachable scratch memory for the forged token + fake root.
    let user_page = k.sys_mmap(2 * ptstore_core::PAGE_SIZE).expect("mmap");
    let scratch_pa = k
        .touch_user(user_page, ptstore_core::AccessKind::Write)
        .expect("touch")
        .page_align_down();
    let fake_root = scratch_pa;
    let forged_token = scratch_pa + 0x800;

    let pcb = k.pcb_addr(victim).expect("victim exists");
    let victim_token_slot = pcb + PCB_OFF_TOKEN_PTR;
    // Forge: token.pt_ptr = fake_root; token.user_ptr = victim's token slot.
    k.attacker_write_u64(k.direct_map(forged_token), fake_root.as_u64())
        .expect("scratch writable");
    k.attacker_write_u64(k.direct_map(forged_token + 8), victim_token_slot.as_u64())
        .expect("scratch writable");
    // Hijack both PCB fields consistently.
    k.attacker_write_u64(k.direct_map(pcb + PCB_OFF_PT_PTR), fake_root.as_u64())
        .expect("pcb writable");
    k.attacker_write_u64(k.direct_map(victim_token_slot), forged_token.as_u64())
        .expect("pcb writable");

    match k.activate_address_space(victim) {
        Err(KernelError::TokenInvalid(_)) => AttackOutcome::Blocked(BlockedBy::TokenCheck),
        Err(e) => panic!("unexpected switch_mm error: {e}"),
        Ok(()) => {
            // Tokens ablated (or broken): the forged credential was accepted.
            // The PTW origin check is the next line of defense.
            match k.touch_user(VirtAddr::new(0x3000), ptstore_core::AccessKind::Read) {
                Err(KernelError::Access(e)) if e.is_ptstore_fault() => {
                    AttackOutcome::Blocked(BlockedBy::PtwOriginCheck)
                }
                _ => AttackOutcome::Succeeded,
            }
        }
    }
}

/// Huge-page tampering: the victim owns a 2 MiB anonymous huge mapping, so
/// a single level-1 leaf PTE translates 512 pages at once. The attacker
/// overwrites that one slot through the direct map, keeping the user flags
/// but pointing the span at physical page 0 — kernel text and data become
/// user-readable/writable through an innocent-looking user VA. Same primitive
/// as PT-Tampering, 512× the blast radius; the defenses must not care which
/// level the corrupted slot lives at.
pub fn huge_page_tampering(k: &mut Kernel) -> AttackOutcome {
    let victim = k.current_pid();
    let va = k.sys_mmap_huge(2 * MIB).expect("huge mmap");
    let (slot_pa, level) = k
        .leaf_pte_phys_addr(victim, va)
        .expect("huge mapping present");
    debug_assert_eq!(level, 1, "2 MiB mapping must be a level-1 leaf");
    let before = k
        .read_pte_raw(slot_pa)
        .expect("kernel can read its own PTE");
    // Keep V|R|W|U|A|D, zero the PPN: the span now aliases PA 0..2 MiB.
    let tampered = before & 0x3ff;
    let dm = k.direct_map(slot_pa);

    match k.attacker_write_u64(dm, tampered) {
        Ok(()) => {
            let after = k.read_pte_raw(slot_pa).expect("readable");
            debug_assert_eq!(after, tampered, "write landed");
            AttackOutcome::Succeeded
        }
        Err(f) if f.is_ptstore() => AttackOutcome::Blocked(BlockedBy::SecureRegionPmp),
        Err(AttackerFault::PageFault) => match k.cfg.defense {
            DefenseMode::VirtualIsolation => AttackOutcome::Blocked(BlockedBy::PagePermissions),
            DefenseMode::PtRand => {
                let window = match k.attacker_leak_pt_rand_window() {
                    Ok(w) => w,
                    Err(_) => return AttackOutcome::Blocked(BlockedBy::UnmappedTarget),
                };
                let via = VirtAddr::new(window + slot_pa.as_u64());
                match k.attacker_write_u64(via, tampered) {
                    Ok(()) => AttackOutcome::SucceededViaLeak,
                    Err(_) => AttackOutcome::Blocked(BlockedBy::UnmappedTarget),
                }
            }
            _ => AttackOutcome::Blocked(BlockedBy::UnmappedTarget),
        },
        Err(AttackerFault::AccessFault(_)) => AttackOutcome::Blocked(BlockedBy::SecureRegionPmp),
    }
}

/// Dispatches one attack scenario.
pub fn run(kind: AttackKind, k: &mut Kernel) -> AttackOutcome {
    match kind {
        AttackKind::PtTampering => pt_tampering(k),
        AttackKind::PtInjection => pt_injection(k),
        AttackKind::PtReuse => pt_reuse(k),
        AttackKind::AllocatorMetadata => allocator_metadata(k),
        AttackKind::VmMetadata => vm_metadata(k),
        AttackKind::TlbInconsistency => tlb_inconsistency(k),
        AttackKind::SecureDataReuse => secure_data_reuse(k),
        AttackKind::TokenForging => token_forging(k),
        AttackKind::HugePageTampering => huge_page_tampering(k),
    }
}
