//! # ptstore
//!
//! The facade crate of the PTStore reproduction: one `use ptstore::...` away
//! from the whole system. Re-exports every subsystem crate under a stable
//! module name and provides a [`prelude`] for the common experiment surface.
//!
//! PTStore (*Lightweight Architectural Support for Page Table Isolation*,
//! DAC 2023) protects kernel page tables with four co-designed pieces:
//! a PMP-backed **secure region** (S-bit), dedicated **`ld.pt`/`sd.pt`**
//! instructions, a **walker origin check** (`satp.S`), and a **token
//! mechanism** binding page-table pointers to their PCBs. This workspace
//! rebuilds the hardware (functional RV64 machine), the software (a
//! miniature kernel), the attacks, and the entire evaluation harness.
//!
//! ```
//! use ptstore::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Boot the CFI+PTStore kernel on a 256 MiB machine.
//! let mut k = Kernel::boot(
//!     KernelConfig::cfi_ptstore()
//!         .with_mem_size(256 * MIB)
//!         .with_initial_secure_size(16 * MIB),
//! )?;
//!
//! // The attacker's arbitrary write cannot reach a page table:
//! let pte = k.pte_phys_addr(1, VirtAddr::new(0x1_0000))?;
//! let via_direct_map = k.direct_map(pte);
//! assert!(k.attacker_write_u64(via_direct_map, 0xdead).is_err());
//! # Ok(())
//! # }
//! ```

pub use ptstore_attacks as attacks;
pub use ptstore_core as core;
pub use ptstore_hwcost as hwcost;
pub use ptstore_isa as isa;
pub use ptstore_kernel as kernel;
pub use ptstore_mem as mem;
pub use ptstore_mmu as mmu;
pub use ptstore_trace as trace;
pub use ptstore_workloads as workloads;

/// The common experiment surface in one import.
pub mod prelude {
    pub use ptstore_attacks::{run_attack, security_matrix, AttackKind, AttackOutcome, BlockedBy};
    pub use ptstore_core::prelude::*;
    pub use ptstore_hwcost::{table3, BoomConfig};
    pub use ptstore_isa::{Inst, SimMachine};
    pub use ptstore_kernel::{
        DefenseMode, Kernel, KernelConfig, KernelError, KernelStats, SecurityEvent,
    };
    pub use ptstore_mem::Bus;
    pub use ptstore_mmu::{Mmu, Pte, PteFlags, Satp};
    pub use ptstore_trace::{Snapshot, TraceEvent, TraceSink};
    pub use ptstore_workloads::{measure, overhead_pct, OverheadSeries};
}
