//! Ablation counterexamples: disabling any single defense check must make
//! the bounded search *find* a violation and emit a minimal, replayable
//! trace — the executable version of the paper's §V claim that each layer
//! is load-bearing.

use ptstore_fault::replay_trace;
use ptstore_modelcheck::{explore, Ablation, McConfig, ModelVerdict, OpKind};

/// A small-but-complete search config: the kernel churn ops plus every
/// attack, at a depth that reaches each ablation's violating state.
fn mc(ablate: Option<Ablation>) -> McConfig {
    McConfig {
        depth: 2,
        ablate,
        kinds: vec![
            OpKind::Mmap,
            OpKind::Fork,
            OpKind::PteFlip,
            OpKind::RegionShrink,
            OpKind::Satp,
            OpKind::Forge,
            OpKind::Ipi,
        ],
        ..McConfig::default()
    }
}

#[test]
fn defended_search_verifies() {
    let rep = explore(&mc(None));
    assert_eq!(rep.verdict, ModelVerdict::Verified, "{}", rep.summary());
    assert!(rep.counterexample.is_none());
    assert!(rep.states > 10, "attack denials must not spawn new states");
}

/// Each ablation must be falsified by a shrunk one-op trace containing an
/// attack, the trace must replay to the *same* violation on a fresh
/// machine, and the violation must name the layer that was removed.
fn assert_ablation(ablate: Ablation, expected_violation: &str) {
    let cfg = mc(Some(ablate));
    let rep = explore(&cfg);
    assert_eq!(rep.verdict, ModelVerdict::Falsified, "{}", rep.summary());
    let cex = rep.counterexample.clone().expect("counterexample");
    assert_eq!(
        cex.trace.len(),
        1,
        "BFS minimality + shrinking must reduce {ablate} to one op: {}",
        rep.summary()
    );
    assert!(cex.trace.iter().any(|op| op.is_attack()));
    assert!(
        cex.violations
            .iter()
            .any(|v| v.contains(expected_violation)),
        "{ablate}: expected {expected_violation} in {:?}",
        cex.violations
    );
    // Replayability: a fresh machine reproduces the violation verbatim.
    let replayed = replay_trace(&cfg.kernel_config(), &cex.trace);
    let rendered: Vec<String> = replayed
        .violations
        .iter()
        .map(|v| format!("{v:?}"))
        .collect();
    assert_eq!(rendered, cex.violations);
}

#[test]
fn pmp_ablation_yields_containment_counterexample() {
    assert_ablation(Ablation::PmpSBitCheck, "PtPageOutsideRegion");
}

#[test]
fn ptw_origin_ablation_yields_satp_counterexample() {
    assert_ablation(Ablation::PtwOriginCheck, "SatpRootMismatch");
}

#[test]
fn token_ablation_yields_satp_counterexample() {
    assert_ablation(Ablation::TokenChecks, "SatpRootMismatch");
}

#[test]
fn summary_prints_replayable_trace() {
    let rep = explore(&mc(Some(Ablation::PmpSBitCheck)));
    let s = rep.summary();
    assert!(s.contains("FALSIFIED"), "{s}");
    assert!(s.contains("counterexample (1 ops"), "{s}");
    assert!(s.contains("attack:"), "{s}");
    assert!(s.contains("violations:"), "{s}");
}
