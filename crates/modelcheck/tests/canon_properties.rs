//! Property tests for the canonical state hash and the deterministic BFS.
//!
//! Two properties carry the dedup's soundness story:
//!
//! 1. **Injectivity on the explored corpus** — whenever two sampled op
//!    sequences produce the same digest, their full canonical encodings are
//!    identical too (no observed collision ever merges distinct states).
//! 2. **Jobs-independence** — the exploration digest (an order-sensitive
//!    fold of every discovered state) and the whole rendered report are
//!    identical whatever the host thread count, which is what lets
//!    `scripts/check.sh` compare two runs with a literal `cmp`.

use std::collections::HashMap;

use proptest::collection::vec;
use proptest::prelude::*;
use ptstore_fault::replay;
use ptstore_modelcheck::{canon, explore, McConfig, OpKind};

fn mc() -> McConfig {
    McConfig::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Equal digests imply equal encodings over a corpus of sampled op
    /// sequences (with collisions *between* sequences made likely by
    /// including denied attacks and unavailable ops, which leave the state
    /// unchanged).
    #[test]
    fn digest_is_injective_on_sampled_traces(picks in vec(0usize..1000, 0..6)) {
        let mc = mc();
        let kcfg = mc.kernel_config();
        let alphabet = mc.alphabet();
        let trace: Vec<_> = picks.iter().map(|&i| alphabet[i % alphabet.len()]).collect();

        let mut by_digest: HashMap<u64, String> = HashMap::new();
        // Hash every prefix of the trace, not just its endpoint: prefixes
        // are exactly the states BFS dedups against each other.
        for len in 0..=trace.len() {
            let k = replay(&kcfg, &trace[..len]);
            let enc = canon::encode(&k);
            let digest = canon::digest(&k);
            match by_digest.get(&digest) {
                Some(prev) => prop_assert_eq!(
                    prev, &enc,
                    "digest collision between distinct canonical states"
                ),
                None => {
                    by_digest.insert(digest, enc);
                }
            }
        }
    }

    /// Replaying the same trace twice produces byte-identical canonical
    /// encodings — the determinism contract the whole replay-based search
    /// rests on.
    #[test]
    fn replay_encodings_are_deterministic(picks in vec(0usize..1000, 0..5)) {
        let mc = mc();
        let kcfg = mc.kernel_config();
        let alphabet = mc.alphabet();
        let trace: Vec<_> = picks.iter().map(|&i| alphabet[i % alphabet.len()]).collect();
        let a = canon::encode(&replay(&kcfg, &trace));
        let b = canon::encode(&replay(&kcfg, &trace));
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The BFS report — exploration digest included — is independent of the
    /// worker-thread count.
    #[test]
    fn exploration_is_jobs_independent(jobs in 2usize..6) {
        let base = McConfig {
            depth: 2,
            kinds: vec![OpKind::Mmap, OpKind::Fork, OpKind::Munmap, OpKind::PteFlip],
            ..McConfig::default()
        };
        let seq = explore(&McConfig { jobs: 1, ..base.clone() });
        let par = explore(&McConfig { jobs, ..base });
        prop_assert_eq!(seq.exploration_digest, par.exploration_digest);
        prop_assert_eq!(seq.summary(), par.summary());
    }
}
