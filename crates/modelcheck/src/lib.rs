//! # ptstore-modelcheck — exhaustive bounded model checking of the security core
//!
//! The fuzz campaign (`ptstore-fault::campaign`) samples the attack surface;
//! this crate *enumerates* it. A miniature machine — 64 MiB of physical
//! memory, 1–2 harts, one worker process per hart — is driven through every
//! interleaving of a small deterministic operation alphabet
//! ([`ModelOp`](ptstore_fault::ModelOp)): fork/exit churn,
//! mmap/munmap/mprotect, CoW breaks, secure-region adjustment, token
//! re-validation, deferred-drain flushes, and the de-randomized attacker
//! primitives of the fault injector (PTE flips through the regular channel,
//! rogue PMP requests, `satp` corruption, token forging, dropped shootdown
//! IPIs).
//!
//! The search is a breadth-first enumeration with canonical state hashing:
//!
//! * [`canon`] renders a kernel into a canonical text encoding — secure
//!   region, PMP entry file, allocation cursors, per-hart MMU/queue state
//!   with sorted TLB entries, the process table in pid order with the raw
//!   (attacker-writable) PCB credential words, a content digest of every
//!   reachable page-table page, and the buddy/slab free-structure — and
//!   folds it through the workspace FNV-1a ([`ptstore_core::Fnv1a`]).
//!   Two states with equal encodings behave identically under every future
//!   op, so BFS dedups on the digest.
//! * [`explore()`] replays each frontier state from a fresh boot (the kernel
//!   is deliberately not cloneable), applies one op, runs the machine-wide
//!   invariant oracle ([`Invariants::check`](ptstore_fault::Invariants)) on
//!   the successor, and dedups. Expansion is chunked across host threads
//!   with results merged in submission order, so reports are byte-identical
//!   regardless of `--jobs`.
//!
//! With every defense enabled the search terminates with **zero violations
//! in every reachable state** — the bounded-exhaustive counterpart of the
//! paper's §V case analysis. Ablating a single check
//! ([`Ablation`]) instead produces a [`Counterexample`]: the shortest op
//! sequence reaching a violating state (BFS order guarantees minimal
//! length), re-validated op-drop by op-drop through
//! [`replay_trace`](ptstore_fault::replay_trace) so the printed trace is
//! replayable by construction.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use core::fmt;

pub mod canon;
pub mod explore;

pub use explore::{
    explore, parse_op_kinds, Ablation, Counterexample, ExploreReport, McConfig, OpKind,
};

/// The outcome of one bounded model-checking run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelVerdict {
    /// Every state reachable within the depth bound satisfies every
    /// invariant (bounded verification — the defended configuration).
    Verified,
    /// A reachable state violates an invariant; the report carries a
    /// minimal, replayable [`Counterexample`].
    Falsified,
    /// The state cap was hit before the depth bound was exhausted: no
    /// violation found, but coverage of the bound is incomplete.
    Truncated,
}

impl fmt::Display for ModelVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ModelVerdict::Verified => "VERIFIED",
            ModelVerdict::Falsified => "FALSIFIED",
            ModelVerdict::Truncated => "TRUNCATED",
        })
    }
}
