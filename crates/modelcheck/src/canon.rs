//! Canonical state encoding and hashing for BFS dedup.
//!
//! Two machine states deserve the same canonical digest exactly when no
//! future op sequence can distinguish them — dedup on anything coarser
//! would prune states the exhaustive claim must visit, anything finer
//! merely wastes replays. The encoding therefore covers every piece of
//! state that the op alphabet's behavior reads, directly or transitively:
//!
//! * the secure region and the raw PMP entry file (plus the S-bit
//!   enforcement ablation switch);
//! * the allocation cursors (`next_pid`, `next_asid`, ASID-wrap flag) —
//!   states differing only here diverge on the very next `fork`;
//! * per hart: the running pid, `satp`, the run queue, the deferred-flush
//!   queue (in order — drains pop in order), the page-table magazine, the
//!   mailbox payloads, and the TLB entry *sets* (sorted — see below);
//! * the process table in pid order: identity, state, VMAs, user-mapping
//!   metadata, address-space handles, **and the raw PCB credential words**
//!   (page-table pointer, token pointer, and the pointed-to token fields),
//!   which live in attacker-writable memory and are what the forging
//!   attacks corrupt;
//! * a per-page FNV digest of the *contents* of every reachable page-table
//!   page (kernel template plus every live address space), which is where
//!   PTE flips, CoW flag changes, and mapping changes land;
//! * the buddy zones' free-block sets and the slab caches'
//!   allocation-steering words — two states whose heaps differ hand out
//!   different addresses on the next allocation.
//!
//! Deliberately excluded (documented approximations): cycle counters,
//! statistics, the security log, trace sinks, message `time`/`seq` stamps,
//! fs/pipe state, and user frame contents — none are read by any op's
//! control flow. TLB entries are hashed as a sorted set: replacement-victim
//! rotation is host-private state, so two states merged here can diverge
//! only in *which* entry a future eviction drops; the invariant oracle's
//! verdict depends on the entry set alone, never on the victim choice.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use ptstore_core::{Fnv1a, PhysPageNum};
use ptstore_fault::ModelOp;
use ptstore_kernel::{Kernel, ProcState};

/// Renders `k` into its canonical text encoding.
///
/// The encoding is injective on the state the model checker's op alphabet
/// can observe (see the module docs for the exact coverage); [`digest`] is
/// its FNV-1a fold. Line framing uses `\n`, so distinct field sequences
/// cannot collide by concatenation.
pub fn encode(k: &Kernel) -> String {
    let mut out = String::new();

    match k.secure_region() {
        Some(r) => {
            let _ = writeln!(
                out,
                "region base={:#x} size={:#x}",
                r.base().as_u64(),
                r.size()
            );
        }
        None => out.push_str("region none\n"),
    }
    let pmp = k.bus.pmp();
    let _ = writeln!(
        out,
        "pmp enforce={} {:?}",
        pmp.secure_enforcement(),
        pmp.entries()
    );
    let _ = writeln!(
        out,
        "alloc next_pid={} next_asid={} asid_wrapped={}",
        k.next_pid(),
        k.next_asid(),
        k.asid_rollover_happened()
    );

    for h in &k.harts {
        let mbox: Vec<(usize, String)> = h
            .mailbox
            .iter()
            .map(|m| (m.from, format!("{:?}", m.kind)))
            .collect();
        let _ = writeln!(
            out,
            "hart {} current={} satp={:?} rq={:?} flushq={:?} mag={:?} mbox={:?}",
            h.id, h.current, h.mmu.satp, h.run_queue, h.flush_queue, h.pt_magazine, mbox
        );
        let mut tlb: Vec<String> = h
            .mmu
            .itlb()
            .entries()
            .map(|e| format!("hart{} itlb {e:?}", h.id))
            .chain(
                h.mmu
                    .dtlb()
                    .entries()
                    .map(|e| format!("hart{} dtlb {e:?}", h.id)),
            )
            .collect();
        tlb.sort();
        for line in tlb {
            out.push_str(&line);
            out.push('\n');
        }
    }

    let mem = k.bus.mem();
    for (_, p) in k.procs.handles() {
        let _ = writeln!(
            out,
            "proc {} parent={:?} state={:?} root={:?} asid={} ptpages={:?} brk={:#x} \
             cursor={:#x} mm_owner={:?} threads={:?} kids={:?} vmas={:?}",
            p.pid,
            p.parent,
            p.state,
            p.aspace.root,
            p.aspace.asid,
            p.aspace.pt_pages,
            p.brk,
            p.mmap_cursor,
            p.mm_owner,
            p.threads,
            p.children,
            p.vmas
        );
        let _ = writeln!(out, "  user={:?}", p.aspace.user);
        // The attacker-writable credential words, raw from DRAM: the PCB
        // page-table pointer, the token pointer, and — when the token
        // pointer is in-bounds — the two token fields it designates.
        let pt_raw = k.pcb_pt_ptr_slot(p.pid).and_then(|s| mem.read_u64(s).ok());
        let tok_ptr = k.pcb_token_slot(p.pid).and_then(|s| mem.read_u64(s).ok());
        let tok_words = tok_ptr.and_then(|t| {
            let a = ptstore_core::PhysAddr::new(t);
            Some((mem.read_u64(a).ok()?, mem.read_u64(a + 8).ok()?))
        });
        let _ = writeln!(
            out,
            "  pcbraw pt={pt_raw:?} tok={tok_ptr:?} tokwords={tok_words:?}"
        );
    }

    for ppn in reachable_pt_pages(k) {
        let _ = writeln!(
            out,
            "ptpage {:?} {:016x}",
            ppn,
            mem.page_digest(ppn).unwrap_or(u64::MAX)
        );
    }

    for (zone, order, ppn) in k.zone_free_blocks() {
        let _ = writeln!(out, "zone {zone} o={order} {ppn:?}");
    }
    let _ = writeln!(out, "slab {:x?}", k.slab_canon_words());

    out
}

/// Every page-table page the machine can currently reach: the kernel
/// template (root included) plus root and interior pages of each live
/// address space — the same page set the invariant oracle's containment
/// walk covers, so a landed PTE flip always lands in a hashed page.
fn reachable_pt_pages(k: &Kernel) -> BTreeSet<PhysPageNum> {
    let mut pages: BTreeSet<PhysPageNum> = BTreeSet::new();
    pages.insert(k.kernel_root());
    pages.extend(k.kernel_pt_pages().iter().copied());
    for (_, p) in k.procs.handles() {
        if p.mm_owner.is_none() && p.state != ProcState::Zombie {
            pages.insert(p.aspace.root);
            pages.extend(p.aspace.pt_pages.iter().copied());
        }
    }
    pages
}

/// FNV-1a digest of [`encode`]. BFS dedups on this; the injectivity
/// property test drives sampled op corpora through both and checks that
/// equal digests imply equal encodings.
pub fn digest(k: &Kernel) -> u64 {
    Fnv1a::hash_bytes(encode(k).as_bytes())
}

/// Digest of a state reached by replaying `trace` — convenience for tests.
pub fn trace_digest(cfg: &ptstore_kernel::KernelConfig, trace: &[ModelOp]) -> u64 {
    digest(&ptstore_fault::replay(cfg, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptstore_core::MIB;
    use ptstore_fault::{apply, boot_model, ModelOp};
    use ptstore_kernel::KernelConfig;

    fn cfg() -> KernelConfig {
        KernelConfig::cfi_ptstore()
            .with_mem_size(64 * MIB)
            .with_initial_secure_size(4 * MIB)
            .with_harts(2)
    }

    #[test]
    fn encode_is_deterministic() {
        let cfg = cfg();
        let a = encode(&boot_model(&cfg));
        let b = encode(&boot_model(&cfg));
        assert_eq!(a, b);
    }

    #[test]
    fn kernel_ops_change_the_digest() {
        let cfg = cfg();
        let mut k = boot_model(&cfg);
        let d0 = digest(&k);
        apply(&mut k, ModelOp::Mmap { hart: 0 });
        let d1 = digest(&k);
        assert_ne!(d0, d1, "mmap must be visible to the canonical state");
        apply(&mut k, ModelOp::Fork { hart: 1 });
        assert_ne!(
            d1,
            digest(&k),
            "fork must be visible to the canonical state"
        );
    }

    #[test]
    fn denied_attack_leaves_digest_unchanged_modulo_bookkeeping() {
        // A refused attack restores its scaffolding; the canonical state
        // (which excludes cycles/stats/security-log) must not move.
        let cfg = cfg();
        let mut k = boot_model(&cfg);
        let d0 = digest(&k);
        apply(&mut k, ModelOp::PteFlip { hart: 0, bit: 35 });
        assert_eq!(d0, digest(&k), "denied PTE flip must be invisible");
        apply(&mut k, ModelOp::TokenForge { hart: 0 });
        assert_eq!(d0, digest(&k), "denied token forge must be invisible");
    }

    #[test]
    fn landed_corruption_is_visible() {
        let mut cfg = cfg();
        cfg.pmp_s_bit_check = false;
        let mut k = boot_model(&cfg);
        let d0 = digest(&k);
        apply(&mut k, ModelOp::PteFlip { hart: 0, bit: 35 });
        assert_ne!(
            d0,
            digest(&k),
            "landed PTE flip must change a hashed pt page"
        );
    }
}
