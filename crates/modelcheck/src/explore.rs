//! Bounded breadth-first exploration of the miniature machine.
//!
//! The kernel is deliberately not cloneable (its determinism story leans on
//! that), so a frontier state is represented by the op sequence that reaches
//! it and re-executed from a fresh [`boot_model`] whenever it is expanded —
//! the replay discipline of [`ptstore_fault::replay()`]. BFS guarantees that
//! the first violating state found is reached by a *minimal-length* trace:
//! any shorter violating trace would have been expanded at an earlier level.
//!
//! ## Determinism
//!
//! Expansion of one level fans out across host threads in contiguous
//! chunks, and results are merged **in submission order** — the same total
//! order a single-threaded run produces. Dedup inserts digests in that
//! order, the exploration digest folds them in that order, and the first
//! violation in that order wins. Reports are therefore byte-identical for
//! every `--jobs` value, which `scripts/check.sh` enforces with a literal
//! `cmp` of two runs and the property tests re-check in-process.

use core::fmt;
use std::collections::HashSet;
use std::str::FromStr;

use ptstore_core::{Fnv1a, PagingScheme, MIB};
use ptstore_fault::{apply, boot_model, format_trace, replay, replay_trace, Invariants, ModelOp};
use ptstore_kernel::{DrainPolicy, KernelConfig};

use crate::{canon, ModelVerdict};

/// A single defense check to disable — the ablation axis of the search.
///
/// Each value names the [`KernelConfig`] switch it clears; with exactly one
/// cleared, the bounded search is expected to *find* a violation and emit a
/// minimal counterexample, mirroring the fault campaign's ablation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// Clear `pmp_s_bit_check`: the PMP stops refusing regular-channel
    /// stores to the secure region, so PTE flips land.
    PmpSBitCheck,
    /// Clear `ptw_origin_check`: `satp` loses its S-bit, so walks rooted
    /// outside the secure region are no longer refused.
    PtwOriginCheck,
    /// Clear `token_checks`: `switch_mm` trusts the attacker-writable PCB
    /// page-table pointer, so forged credentials reach `satp`.
    TokenChecks,
}

impl Ablation {
    /// All ablation targets, in flag order.
    pub const ALL: [Ablation; 3] = [
        Ablation::PmpSBitCheck,
        Ablation::PtwOriginCheck,
        Ablation::TokenChecks,
    ];

    /// The config-flag name (also the `--ablate` vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            Ablation::PmpSBitCheck => "pmp_s_bit_check",
            Ablation::PtwOriginCheck => "ptw_origin_check",
            Ablation::TokenChecks => "token_checks",
        }
    }

    /// Returns `cfg` with this one check disabled.
    pub fn apply(&self, mut cfg: KernelConfig) -> KernelConfig {
        match self {
            Ablation::PmpSBitCheck => cfg.pmp_s_bit_check = false,
            Ablation::PtwOriginCheck => cfg.ptw_origin_check = false,
            Ablation::TokenChecks => cfg.token_checks = false,
        }
        cfg
    }
}

impl fmt::Display for Ablation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Ablation {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ablation::ALL
            .into_iter()
            .find(|a| a.name() == s)
            .ok_or_else(|| {
                format!("unknown ablation {s:?} (pmp_s_bit_check, ptw_origin_check, token_checks)")
            })
    }
}

/// One family of the op alphabet — the `--ops` filter vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `fork(hN)`.
    Fork,
    /// `exit-child(hN)`.
    Exit,
    /// `mmap(hN)`.
    Mmap,
    /// `munmap(hN)`.
    Munmap,
    /// `mprotect-ro(hN)`.
    Mprotect,
    /// `touch(hN,r|w)`.
    Touch,
    /// `cow-break(hN)`.
    Cow,
    /// `adjust-secure`.
    Adjust,
    /// `token-recheck(hN)`.
    Token,
    /// `drain(hN)`.
    Drain,
    /// `attack:pte-flip(hN,bitB)`.
    PteFlip,
    /// `attack:rogue-region-shrink`.
    RegionShrink,
    /// `attack:satp-corrupt(hN)`.
    Satp,
    /// `attack:token-forge(hN)`.
    Forge,
    /// `attack:ipi-drop(hN)`.
    Ipi,
}

impl OpKind {
    /// The whole alphabet, in canonical order.
    pub const ALL: [OpKind; 15] = [
        OpKind::Fork,
        OpKind::Exit,
        OpKind::Mmap,
        OpKind::Munmap,
        OpKind::Mprotect,
        OpKind::Touch,
        OpKind::Cow,
        OpKind::Adjust,
        OpKind::Token,
        OpKind::Drain,
        OpKind::PteFlip,
        OpKind::RegionShrink,
        OpKind::Satp,
        OpKind::Forge,
        OpKind::Ipi,
    ];

    /// The `--ops` flag name.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Fork => "fork",
            OpKind::Exit => "exit",
            OpKind::Mmap => "mmap",
            OpKind::Munmap => "munmap",
            OpKind::Mprotect => "mprotect",
            OpKind::Touch => "touch",
            OpKind::Cow => "cow",
            OpKind::Adjust => "adjust",
            OpKind::Token => "token",
            OpKind::Drain => "drain",
            OpKind::PteFlip => "pte-flip",
            OpKind::RegionShrink => "region-shrink",
            OpKind::Satp => "satp",
            OpKind::Forge => "forge",
            OpKind::Ipi => "ipi",
        }
    }

    /// The concrete ops this kind contributes on an `harts`-hart machine.
    fn instantiate(&self, harts: usize, out: &mut Vec<ModelOp>) {
        match self {
            OpKind::Fork => out.extend((0..harts).map(|hart| ModelOp::Fork { hart })),
            OpKind::Exit => out.extend((0..harts).map(|hart| ModelOp::ExitChild { hart })),
            OpKind::Mmap => out.extend((0..harts).map(|hart| ModelOp::Mmap { hart })),
            OpKind::Munmap => out.extend((0..harts).map(|hart| ModelOp::Munmap { hart })),
            OpKind::Mprotect => out.extend((0..harts).map(|hart| ModelOp::MprotectRo { hart })),
            OpKind::Touch => out.extend((0..harts).flat_map(|hart| {
                [
                    ModelOp::Touch { hart, write: false },
                    ModelOp::Touch { hart, write: true },
                ]
            })),
            OpKind::Cow => out.extend((0..harts).map(|hart| ModelOp::CowBreak { hart })),
            OpKind::Adjust => out.push(ModelOp::AdjustSecure),
            OpKind::Token => out.extend((0..harts).map(|hart| ModelOp::TokenRecheck { hart })),
            OpKind::Drain => out.extend((0..harts).map(|hart| ModelOp::Drain { hart })),
            OpKind::PteFlip => {
                out.extend((0..harts).map(|hart| ModelOp::PteFlip { hart, bit: 35 }))
            }
            OpKind::RegionShrink => out.push(ModelOp::RogueRegionShrink),
            OpKind::Satp => out.extend((0..harts).map(|hart| ModelOp::SatpCorrupt { hart })),
            OpKind::Forge => out.extend((0..harts).map(|hart| ModelOp::TokenForge { hart })),
            OpKind::Ipi => out.extend((0..harts).map(|hart| ModelOp::DropIpi { hart })),
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for OpKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        OpKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| format!("unknown op kind {s:?}"))
    }
}

/// Parses a comma-separated `--ops` list.
pub fn parse_op_kinds(s: &str) -> Result<Vec<OpKind>, String> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(OpKind::from_str)
        .collect()
}

/// Search configuration: machine geometry plus bound and filters.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Harts on the miniature machine (1 or 2).
    pub harts: usize,
    /// Paging scheme to boot under.
    pub scheme: PagingScheme,
    /// Deferred-shootdown drain policy; `None` runs eager shootdowns.
    pub drain_policy: Option<DrainPolicy>,
    /// The single defense check to disable, if any.
    pub ablate: Option<Ablation>,
    /// BFS depth bound (ops per trace).
    pub depth: u32,
    /// Op families to include.
    pub kinds: Vec<OpKind>,
    /// Host worker threads for frontier expansion (reports are identical
    /// for every value).
    pub jobs: usize,
    /// Stop growing the frontier beyond this many deduped states
    /// ([`ModelVerdict::Truncated`] when hit).
    pub max_states: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            harts: 2,
            scheme: PagingScheme::Sv39,
            drain_policy: Some(DrainPolicy::Boundary),
            ablate: None,
            depth: 5,
            kinds: OpKind::ALL.to_vec(),
            jobs: 1,
            max_states: 2_000_000,
        }
    }
}

impl McConfig {
    /// The kernel configuration of the miniature machine: full PTStore
    /// defenses on 64 MiB / 4 MiB secure, minus the one ablated check.
    pub fn kernel_config(&self) -> KernelConfig {
        let mut cfg = KernelConfig::cfi_ptstore()
            .with_mem_size(64 * MIB)
            .with_initial_secure_size(4 * MIB)
            .with_harts(self.harts)
            .with_scheme(self.scheme);
        if let Some(p) = self.drain_policy {
            cfg = cfg.with_deferred_shootdowns(true).with_drain_policy(p);
        }
        match self.ablate {
            Some(a) => a.apply(cfg),
            None => cfg,
        }
    }

    /// The concrete op alphabet, in canonical order.
    pub fn alphabet(&self) -> Vec<ModelOp> {
        let mut out = Vec::new();
        for k in &self.kinds {
            k.instantiate(self.harts, &mut out);
        }
        out
    }
}

/// A minimal violating trace plus the violations it reproduces.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The shrunk op sequence; replaying it on [`McConfig::kernel_config`]
    /// reproduces `violations` (the regression tests pin exactly this).
    pub trace: Vec<ModelOp>,
    /// Debug renderings of the oracle violations at the final state.
    pub violations: Vec<String>,
    /// Trace length before shrinking (BFS already guarantees minimal
    /// length, so this documents that the shrinker found nothing to drop —
    /// or caught a non-essential prefix op).
    pub shrunk_from: usize,
}

/// The result of one bounded exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// The verdict.
    pub verdict: ModelVerdict,
    /// Deduped canonical states visited (initial state included).
    pub states: u64,
    /// Op applications performed (edges of the explored graph).
    pub transitions: u64,
    /// Invariant-oracle runs (one per visited or revisited state).
    pub oracle_checks: u64,
    /// Newly discovered states per BFS level, level 0 first.
    pub states_per_depth: Vec<u64>,
    /// FNV fold of every discovered digest in discovery order — equal
    /// across `--jobs` values iff exploration order is deterministic.
    pub exploration_digest: u64,
    /// Size of the op alphabet used.
    pub alphabet_len: usize,
    /// The counterexample, when [`ModelVerdict::Falsified`].
    pub counterexample: Option<Counterexample>,
    /// Echo of the searched configuration, for the report header.
    pub config_line: String,
}

impl ExploreReport {
    /// Renders the deterministic human-readable report. Contains no
    /// timing, host, or thread-count information: two runs of the same
    /// search compare byte-for-byte regardless of `--jobs`.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        use core::fmt::Write;
        let _ = writeln!(s, "modelcheck: {}", self.config_line);
        let depths: Vec<String> = self
            .states_per_depth
            .iter()
            .map(|n| n.to_string())
            .collect();
        let _ = writeln!(
            s,
            "  states explored  : {} (deduped; per depth: {})",
            self.states,
            depths.join(" ")
        );
        let _ = writeln!(s, "  transitions      : {}", self.transitions);
        let _ = writeln!(s, "  oracle checks    : {}", self.oracle_checks);
        let _ = writeln!(s, "  exploration hash : {:#018x}", self.exploration_digest);
        match (&self.verdict, &self.counterexample) {
            (ModelVerdict::Falsified, Some(cex)) => {
                let _ = writeln!(s, "  verdict          : FALSIFIED");
                let _ = writeln!(
                    s,
                    "  counterexample ({} ops, shrunk from {}):",
                    cex.trace.len(),
                    cex.shrunk_from
                );
                s.push_str(&format_trace(&cex.trace));
                let _ = writeln!(s, "  violations:");
                for v in &cex.violations {
                    let _ = writeln!(s, "    - {v}");
                }
            }
            (ModelVerdict::Truncated, _) => {
                let _ = writeln!(
                    s,
                    "  verdict          : TRUNCATED — state cap hit, no violation found"
                );
            }
            _ => {
                let _ = writeln!(
                    s,
                    "  verdict          : VERIFIED — 0 invariant violations in any reachable state"
                );
            }
        }
        s
    }
}

/// One frontier expansion: successor digest plus oracle verdict.
struct Expansion {
    digest: u64,
    violations: Vec<String>,
}

/// Chunked deterministic parallel map: `items` is split into at most
/// `jobs` contiguous chunks, each mapped on its own scoped thread, and the
/// per-chunk outputs are concatenated in chunk order — the identity
/// permutation of a sequential map, so callers can merge in submission
/// order without any cross-thread coordination.
fn par_map<T: Sync, R: Send>(jobs: usize, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(jobs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| scope.spawn(|| c.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("modelcheck worker panicked"))
            .collect()
    })
}

/// Runs the bounded breadth-first search described in the module docs.
pub fn explore(mc: &McConfig) -> ExploreReport {
    let kcfg = mc.kernel_config();
    let alphabet = mc.alphabet();
    let config_line = format!(
        "scheme={} harts={} drain={} ablate={} depth={} alphabet={}",
        mc.scheme.name(),
        mc.harts,
        match mc.drain_policy {
            Some(p) => p.to_string(),
            None => "eager".to_string(),
        },
        match mc.ablate {
            Some(a) => a.name(),
            None => "none",
        },
        mc.depth,
        alphabet.len(),
    );

    let root = boot_model(&kcfg);
    let root_rep = Invariants::check(&root);
    let root_digest = canon::digest(&root);
    let mut exploration = Fnv1a::new();
    exploration.write_u64(root_digest);

    let mut report = ExploreReport {
        verdict: ModelVerdict::Verified,
        states: 1,
        transitions: 0,
        oracle_checks: 1,
        states_per_depth: vec![1],
        exploration_digest: exploration.finish(),
        alphabet_len: alphabet.len(),
        counterexample: None,
        config_line,
    };
    if !root_rep.ok() {
        // The initial machine itself violates an invariant (never the case
        // for the shipped configurations, but the report stays honest).
        report.verdict = ModelVerdict::Falsified;
        report.counterexample = Some(Counterexample {
            trace: Vec::new(),
            violations: root_rep
                .violations
                .iter()
                .map(|v| format!("{v:?}"))
                .collect(),
            shrunk_from: 0,
        });
        return report;
    }

    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(root_digest);
    let mut frontier: Vec<Vec<ModelOp>> = vec![Vec::new()];
    let mut raw_counterexample: Option<(Vec<ModelOp>, Vec<String>)> = None;
    let mut truncated = false;

    'levels: for _ in 1..=mc.depth {
        if frontier.is_empty() || truncated {
            break;
        }
        let work: Vec<(usize, ModelOp)> = (0..frontier.len())
            .flat_map(|i| alphabet.iter().map(move |&op| (i, op)))
            .collect();
        let frontier_ref = &frontier;
        let results = par_map(mc.jobs, &work, |&(i, op)| {
            let mut k = replay(&kcfg, &frontier_ref[i]);
            apply(&mut k, op);
            let rep = Invariants::check(&k);
            Expansion {
                digest: canon::digest(&k),
                violations: rep.violations.iter().map(|v| format!("{v:?}")).collect(),
            }
        });

        let mut next: Vec<Vec<ModelOp>> = Vec::new();
        let mut discovered = 0u64;
        for (&(i, op), ex) in work.iter().zip(results) {
            report.transitions += 1;
            report.oracle_checks += 1;
            if !ex.violations.is_empty() {
                let mut trace = frontier[i].clone();
                trace.push(op);
                raw_counterexample = Some((trace, ex.violations));
                // First violation in submission order at the minimal BFS
                // level: deterministic, and minimal-length by BFS.
                if seen.insert(ex.digest) {
                    discovered += 1;
                    report.states += 1;
                    exploration.write_u64(ex.digest);
                }
                report.states_per_depth.push(discovered);
                break 'levels;
            }
            if seen.insert(ex.digest) {
                discovered += 1;
                report.states += 1;
                exploration.write_u64(ex.digest);
                if report.states >= mc.max_states {
                    truncated = true;
                } else {
                    let mut trace = frontier[i].clone();
                    trace.push(op);
                    next.push(trace);
                }
            }
        }
        if raw_counterexample.is_none() {
            report.states_per_depth.push(discovered);
        }
        frontier = next;
    }

    report.exploration_digest = exploration.finish();
    if let Some((trace, _)) = raw_counterexample {
        let (shrunk, from) = shrink(&kcfg, trace);
        let final_rep = replay_trace(&kcfg, &shrunk);
        report.verdict = ModelVerdict::Falsified;
        report.counterexample = Some(Counterexample {
            trace: shrunk,
            violations: final_rep
                .violations
                .iter()
                .map(|v| format!("{v:?}"))
                .collect(),
            shrunk_from: from,
        });
    } else if truncated {
        report.verdict = ModelVerdict::Truncated;
    }
    report
}

/// Greedy delta-debugging shrink: repeatedly drop any single op whose
/// removal keeps the trace violating (validated by a full [`replay_trace`]
/// re-execution), to a fixed point. BFS already guarantees minimal length,
/// so this usually confirms rather than shortens — but every candidate is
/// validated end-to-end, which is what makes the printed trace replayable.
fn shrink(kcfg: &KernelConfig, trace: Vec<ModelOp>) -> (Vec<ModelOp>, usize) {
    let from = trace.len();
    let mut cur = trace;
    loop {
        let mut dropped = false;
        let mut i = 0;
        while i < cur.len() && cur.len() > 1 {
            let mut cand = cur.clone();
            cand.remove(i);
            if !replay_trace(kcfg, &cand).ok() {
                cur = cand;
                dropped = true;
            } else {
                i += 1;
            }
        }
        if !dropped {
            break;
        }
    }
    (cur, from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(depth: u32, ablate: Option<Ablation>) -> McConfig {
        McConfig {
            depth,
            ablate,
            kinds: vec![OpKind::Mmap, OpKind::Fork, OpKind::PteFlip],
            ..McConfig::default()
        }
    }

    #[test]
    fn defended_small_bound_verifies() {
        let rep = explore(&quick(2, None));
        assert_eq!(rep.verdict, ModelVerdict::Verified, "{}", rep.summary());
        assert!(rep.counterexample.is_none());
        assert!(rep.states > 1);
        assert_eq!(rep.states_per_depth.iter().sum::<u64>(), rep.states);
    }

    #[test]
    fn summary_is_deterministic() {
        let a = explore(&quick(2, None));
        let b = explore(&quick(2, None));
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.exploration_digest, b.exploration_digest);
    }

    #[test]
    fn jobs_do_not_change_the_report() {
        let mut one = quick(2, None);
        one.jobs = 1;
        let mut four = quick(2, None);
        four.jobs = 4;
        let a = explore(&one);
        let b = explore(&four);
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.exploration_digest, b.exploration_digest);
    }

    #[test]
    fn ablation_falsifies_with_minimal_trace() {
        let rep = explore(&quick(3, Some(Ablation::PmpSBitCheck)));
        assert_eq!(rep.verdict, ModelVerdict::Falsified, "{}", rep.summary());
        let cex = rep.counterexample.expect("counterexample");
        assert_eq!(cex.trace.len(), 1, "BFS + shrink must find the 1-op trace");
        assert!(cex.trace[0].is_attack());
        assert!(!cex.violations.is_empty());
    }

    #[test]
    fn state_cap_truncates_the_search() {
        let mut mc = quick(3, None);
        mc.max_states = 3;
        let rep = explore(&mc);
        assert_eq!(rep.verdict, ModelVerdict::Truncated, "{}", rep.summary());
        assert!(rep.counterexample.is_none());
        assert!(rep.summary().contains("TRUNCATED"));
    }

    #[test]
    fn op_kind_parsing_round_trips() {
        for k in OpKind::ALL {
            assert_eq!(k.name().parse::<OpKind>().unwrap(), k);
        }
        assert_eq!(
            parse_op_kinds("fork,mmap,pte-flip").unwrap(),
            vec![OpKind::Fork, OpKind::Mmap, OpKind::PteFlip]
        );
        assert!(parse_op_kinds("fork,bogus").is_err());
        for a in Ablation::ALL {
            assert_eq!(a.name().parse::<Ablation>().unwrap(), a);
        }
    }
}
