//! The machine-wide invariant oracle.
//!
//! [`Invariants::check`] inspects a [`Kernel`] from the DRAM's-eye view —
//! raw physical reads that bypass the PMP, exactly what a verification
//! harness (not software running *on* the machine) is allowed to do — and
//! verifies the state properties the PTStore mechanism is supposed to
//! make unbreakable:
//!
//! 1. **Containment** — every page-table page any process (or the kernel)
//!    can reach by walking from a root lives inside the secure region and
//!    is tracked by its owning address space; no user-accessible leaf
//!    maps secure-region storage.
//! 2. **Binding** — each hart's `satp` root is the address-space root of
//!    the process it is running, and (under PTStore) that root's token
//!    binds it to the owning PCB.
//! 3. **PMP consistency** — the PMP's installed region and S-bit
//!    enforcement mirror the kernel's configuration, and every hart's
//!    `satp.S` matches the configured PTW origin check.
//! 4. **TLB hygiene** — no live TLB entry grants user access to a
//!    page-table page or to secure-region storage; and no user TLB entry
//!    is *stale* — every cached translation either matches what a live
//!    address space's page tables say today (permission upgrades in the
//!    tables are tolerated; the cached entry grants less), belongs to no
//!    live ASID, or has its invalidation still queued for a deferred
//!    drain. A translation that fails all three is a remote invalidation
//!    the drain machinery lost — the missed-drain bug class the
//!    `DrainDrop` fault injects.
//! 5. **Table-handle consistency** — the generational process table's
//!    three views of each live slot agree: the owning-hart payload, the
//!    lock-free [`TableReader`] metadata, and the pid index all bind the
//!    same `(slot, gen, pid)` triple, and the slot's handle resolves back
//!    to the same process.
//!
//! The oracle deliberately does **not** check attacker-writable kernel
//! data (PCB fields of non-running processes, user memory contents):
//! under the paper's threat model those may be arbitrarily corrupt at any
//! time, and the mechanism's promise is only that corruption never
//! *reaches* the translation machinery. Checking exactly the promised
//! surface is what lets the campaign demand zero violations from the
//! unmodified mechanism.

use std::collections::BTreeSet;

use ptstore_core::{PhysAddr, PhysPageNum, SecureRegion, TokenError};
use ptstore_kernel::{Kernel, Pid, ProcState, TableReader};
use ptstore_mmu::{Pte, Tlb};
use ptstore_trace::TraceEvent;

/// One invariant violation, with enough context to debug the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A tracked or reachable page-table page lies outside the secure
    /// region.
    PtPageOutsideRegion {
        /// The offending page.
        ppn: PhysPageNum,
    },
    /// A walk from a root reached a next-level table no address space
    /// tracks (a stray or corrupted pointer).
    ReachableUnknownPtPage {
        /// The untracked page the walk reached.
        ppn: PhysPageNum,
        /// The page holding the pointer.
        parent: PhysPageNum,
    },
    /// A page-table page could not be read back raw (the walk was
    /// redirected outside physical memory).
    UnreadablePtPage {
        /// The unreadable page.
        ppn: PhysPageNum,
    },
    /// A user-accessible leaf maps storage inside the secure region.
    UserLeafIntoRegion {
        /// The mapped secure-region page.
        ppn: PhysPageNum,
    },
    /// A hart's `satp` root does not match the address space of the
    /// process it runs.
    SatpRootMismatch {
        /// The hart.
        hart: usize,
        /// The process the hart believes it is running.
        pid: Pid,
    },
    /// The running process's token fails validation against its PCB.
    TokenBindingBroken {
        /// The mm owner whose binding failed.
        pid: Pid,
        /// Why validation failed.
        err: TokenError,
    },
    /// The PMP's installed secure region disagrees with the kernel's.
    PmpRegionMismatch,
    /// PMP S-bit enforcement state disagrees with the configuration.
    PmpEnforcementMismatch,
    /// A hart's `satp.S` disagrees with the configured PTW origin check.
    SatpSBitMismatch {
        /// The hart.
        hart: usize,
    },
    /// A TLB entry grants user access to page-table storage.
    TlbMapsPtPage {
        /// The hart owning the TLB.
        hart: usize,
        /// The cached physical page.
        ppn: PhysPageNum,
    },
    /// A live slot's generational handle failed to resolve consistently
    /// across the table's owning-hart and lock-free reader views.
    HandleBindingBroken {
        /// The pid whose slot binding broke.
        pid: Pid,
    },
    /// A TLB entry caches a translation a live address space's page
    /// tables no longer back, and its invalidation is not queued for any
    /// deferred drain: a shootdown the drain machinery lost.
    TlbStaleTranslation {
        /// The hart owning the TLB.
        hart: usize,
        /// The entry's address-space identifier.
        asid: u16,
        /// The entry's (base) virtual page number.
        vpn: u64,
    },
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Violation::PtPageOutsideRegion { ppn } => {
                write!(f, "page-table page {ppn} outside the secure region")
            }
            Violation::ReachableUnknownPtPage { ppn, parent } => {
                write!(f, "walk reached untracked table {ppn} via {parent}")
            }
            Violation::UnreadablePtPage { ppn } => {
                write!(f, "page-table page {ppn} unreadable")
            }
            Violation::UserLeafIntoRegion { ppn } => {
                write!(f, "user leaf maps secure-region page {ppn}")
            }
            Violation::SatpRootMismatch { hart, pid } => {
                write!(f, "hart {hart} satp root does not match pid {pid}")
            }
            Violation::TokenBindingBroken { pid, err } => {
                write!(f, "token binding broken for pid {pid}: {err}")
            }
            Violation::PmpRegionMismatch => f.write_str("PMP region != kernel region"),
            Violation::PmpEnforcementMismatch => {
                f.write_str("PMP S-bit enforcement != configuration")
            }
            Violation::SatpSBitMismatch { hart } => {
                write!(f, "hart {hart} satp.S != configured origin check")
            }
            Violation::TlbMapsPtPage { hart, ppn } => {
                write!(f, "hart {hart} TLB grants user access to pt page {ppn}")
            }
            Violation::HandleBindingBroken { pid } => {
                write!(f, "generational handle binding broken for pid {pid}")
            }
            Violation::TlbStaleTranslation { hart, asid, vpn } => {
                write!(
                    f,
                    "hart {hart} TLB caches stale translation (asid {asid}, vpn {vpn:#x})"
                )
            }
        }
    }
}

/// The result of one oracle sweep.
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    /// Individual checks evaluated.
    pub checks: u64,
    /// Violations found (empty on a healthy machine).
    pub violations: Vec<Violation>,
}

impl InvariantReport {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The invariant oracle (see the module docs for the invariant list).
pub struct Invariants;

impl Invariants {
    /// Sweeps every invariant over `k` and reports. Emits a
    /// [`TraceEvent::InvariantCheck`] into the kernel's trace sink when
    /// one is attached. Read-only: the machine is not perturbed and no
    /// cycles are charged.
    pub fn check(k: &Kernel) -> InvariantReport {
        let mut rep = InvariantReport::default();
        let region = k.secure_region();
        let known = known_pt_pages(k);

        if k.cfg.defense.is_ptstore() {
            if let Some(region) = region {
                check_containment(k, &region, &known, &mut rep);
                check_pmp(k, &region, &mut rep);
                check_tlbs(k, &region, &known, &mut rep);
                check_tlb_staleness(k, &mut rep);
            }
        }
        check_satp_binding(k, region.as_ref(), &mut rep);
        check_table_handles(k, &mut rep);

        if let Some(sink) = k.trace_sink() {
            sink.emit(TraceEvent::InvariantCheck {
                checks: rep.checks.min(u64::from(u32::MAX)) as u32,
                violations: rep.violations.len().min(u32::MAX as usize) as u32,
            });
        }
        rep
    }
}

/// Every page-table page the kernel's bookkeeping claims exists: the
/// kernel template plus each mm owner's root and tracked table pages.
/// Walks the generational slot array through handles (pid order) so a
/// slot whose generation moved on mid-sweep is skipped, never misread.
fn known_pt_pages(k: &Kernel) -> BTreeSet<PhysPageNum> {
    let mut known: BTreeSet<PhysPageNum> = BTreeSet::new();
    known.insert(k.kernel_root());
    known.extend(k.kernel_pt_pages().iter().copied());
    for (_, p) in k.procs.handles() {
        // Threads (mm_owner = Some) share their owner's tables. Zombies
        // freed their tables at exit: the stale `root` field may alias a
        // page since reallocated to another address space.
        if p.mm_owner.is_none() && p.state != ProcState::Zombie {
            known.insert(p.aspace.root);
            known.extend(p.aspace.pt_pages.iter().copied());
        }
    }
    known
}

/// Invariant 1: containment. Tracked pages live in the region; walking
/// from every root reaches only tracked, in-region tables; user leaves
/// never map region storage.
fn check_containment(
    k: &Kernel,
    region: &SecureRegion,
    known: &BTreeSet<PhysPageNum>,
    rep: &mut InvariantReport,
) {
    for &ppn in known {
        rep.checks += 1;
        if !region.contains(ppn.base_addr()) {
            rep.violations.push(Violation::PtPageOutsideRegion { ppn });
        }
    }
    // Zombie roots are stale (freed at exit) and must not be walked: the
    // page may have been reallocated as a *lower-level* table of another
    // address space, which would be misread at root level here.
    let roots: Vec<PhysPageNum> = core::iter::once(k.kernel_root())
        .chain(
            k.procs
                .handles()
                .filter(|(_, p)| p.mm_owner.is_none() && p.state != ProcState::Zombie)
                .map(|(_, p)| p.aspace.root),
        )
        .collect();
    let mut visited: BTreeSet<PhysPageNum> = BTreeSet::new();
    let root_level = k.cfg.scheme.root_level() as u8;
    let mut stack: Vec<(PhysPageNum, u8)> = roots.into_iter().map(|r| (r, root_level)).collect();
    while let Some((page, level)) = stack.pop() {
        if !visited.insert(page) {
            continue;
        }
        let base = page.base_addr();
        for i in 0..512u64 {
            let Ok(raw) = k.bus.mem().read_u64(base + i * 8) else {
                rep.violations
                    .push(Violation::UnreadablePtPage { ppn: page });
                break;
            };
            let pte = Pte::from_bits(raw);
            if !pte.is_valid() {
                continue;
            }
            rep.checks += 1;
            if pte.is_leaf() {
                // A superpage leaf at level L spans 512^L pages: flag the
                // mapping if *any* of that span reaches into the region.
                let span_bytes = ptstore_core::PAGE_SIZE << (9 * u64::from(level));
                let pa = pte.phys_addr();
                let overlaps = region.contains(pa)
                    || region.contains(pa + (span_bytes - 1))
                    || (pa <= region.base() && region.base().as_u64() < pa.as_u64() + span_bytes);
                if pte.flags().user() && overlaps {
                    rep.violations
                        .push(Violation::UserLeafIntoRegion { ppn: pte.ppn() });
                }
                continue;
            }
            // A valid non-leaf below level 0 cannot exist in any scheme;
            // treat the child as an untracked table either way.
            let child = pte.ppn();
            if !region.contains(child.base_addr()) {
                rep.violations
                    .push(Violation::PtPageOutsideRegion { ppn: child });
            } else if !known.contains(&child) {
                rep.violations.push(Violation::ReachableUnknownPtPage {
                    ppn: child,
                    parent: page,
                });
            } else if level > 0 {
                stack.push((child, level - 1));
            }
        }
    }
}

/// Invariant 2: each hart's `satp` root matches the process it runs; the
/// running process's token binds root, PCB, and token slot together.
fn check_satp_binding(k: &Kernel, region: Option<&SecureRegion>, rep: &mut InvariantReport) {
    for hart in &k.harts {
        let satp = hart.mmu.satp;
        if satp.scheme.is_none() {
            continue; // Bare mode: no root to bind
        }
        rep.checks += 1;
        let pid = hart.current;
        if pid == 0 {
            // Idle harts sit on the kernel template.
            if satp.root_ppn != k.kernel_root() {
                rep.violations
                    .push(Violation::SatpRootMismatch { hart: hart.id, pid });
            }
            continue;
        }
        let owner = k.mm_owner_of(pid);
        let Some(proc_root) = k.procs.get(owner).map(|p| p.aspace.root) else {
            rep.violations
                .push(Violation::SatpRootMismatch { hart: hart.id, pid });
            continue;
        };
        if satp.root_ppn != proc_root {
            rep.violations
                .push(Violation::SatpRootMismatch { hart: hart.id, pid });
            continue;
        }
        if k.cfg.defense.is_ptstore() && k.cfg.token_checks {
            rep.checks += 1;
            if let Err(err) = validate_active_token(k, owner, proc_root, region) {
                rep.violations
                    .push(Violation::TokenBindingBroken { pid: owner, err });
            }
        }
    }
}

/// Raw-reads `owner`'s PCB slots and token and revalidates the binding
/// the way `switch_mm` would.
fn validate_active_token(
    k: &Kernel,
    owner: Pid,
    proc_root: PhysPageNum,
    region: Option<&SecureRegion>,
) -> Result<(), TokenError> {
    let (Some(pt_slot), Some(tok_slot)) = (k.pcb_pt_ptr_slot(owner), k.pcb_token_slot(owner))
    else {
        return Err(TokenError::Cleared);
    };
    let mem = k.bus.mem();
    let pcb_pt = mem.read_u64(pt_slot).map_err(|_| TokenError::Cleared)?;
    let tok_ptr = mem.read_u64(tok_slot).map_err(|_| TokenError::Cleared)?;
    let tok_addr = PhysAddr::new(tok_ptr);
    if !region.is_some_and(|r| r.contains_range(tok_addr, ptstore_core::TOKEN_SIZE)) {
        return Err(TokenError::TokenOutsideSecureRegion);
    }
    let pt = mem.read_u64(tok_addr).map_err(|_| TokenError::Cleared)?;
    let user = mem
        .read_u64(tok_addr + 8)
        .map_err(|_| TokenError::Cleared)?;
    let token = ptstore_core::Token::new(PhysAddr::new(pt), PhysAddr::new(user));
    token.validate(PhysAddr::new(pcb_pt), tok_slot)?;
    // The PCB pointer must also be the root the hart is actually using.
    if PhysAddr::new(pcb_pt) != proc_root.base_addr() {
        return Err(TokenError::PageTablePointerMismatch);
    }
    Ok(())
}

/// Invariant 5: every live slot's three views agree. The owning-hart walk
/// (`handles`), the lock-free reader metadata (`live`/`pid_of`), the pid
/// index (`lookup`), and handle resolution (`resolve`) must all bind the
/// same `(slot, gen, pid)` triple — the property that makes a stale
/// handle's rejection trustworthy rather than a coincidence.
fn check_table_handles(k: &Kernel, rep: &mut InvariantReport) {
    let reader: TableReader = k.procs.reader();
    for (h, p) in k.procs.handles() {
        rep.checks += 1;
        let consistent = reader.live(h)
            && reader.pid_of(h) == Some(p.pid)
            && k.procs.lookup(p.pid) == Some(h)
            && k.procs.resolve(h).is_some_and(|q| q.pid == p.pid);
        if !consistent {
            rep.violations
                .push(Violation::HandleBindingBroken { pid: p.pid });
        }
    }
}

/// Invariant 3: the PMP mirrors the kernel's region and enforcement
/// configuration; every translating hart carries the configured `satp.S`.
fn check_pmp(k: &Kernel, region: &SecureRegion, rep: &mut InvariantReport) {
    rep.checks += 1;
    if k.bus.pmp().secure_region() != Some(*region) {
        rep.violations.push(Violation::PmpRegionMismatch);
    }
    rep.checks += 1;
    if k.bus.pmp().secure_enforcement() != k.cfg.pmp_s_bit_check {
        rep.violations.push(Violation::PmpEnforcementMismatch);
    }
    for hart in &k.harts {
        if hart.mmu.satp.scheme.is_none() {
            continue;
        }
        rep.checks += 1;
        if hart.mmu.satp.s_bit != k.satp_s_bit() {
            rep.violations
                .push(Violation::SatpSBitMismatch { hart: hart.id });
        }
    }
}

/// Invariant 4: no TLB entry grants user access to page-table storage
/// (tracked pages or anything inside the region).
fn check_tlbs(
    k: &Kernel,
    region: &SecureRegion,
    known: &BTreeSet<PhysPageNum>,
    rep: &mut InvariantReport,
) {
    fn scan(
        hart: usize,
        tlb: &Tlb,
        region: &SecureRegion,
        known: &BTreeSet<PhysPageNum>,
        rep: &mut InvariantReport,
    ) {
        for entry in tlb.entries() {
            rep.checks += 1;
            // A span entry (superpage) covers page_size/4K frames; any of
            // them touching pt storage is a violation.
            let span_pages = entry.page_size / ptstore_core::PAGE_SIZE;
            let base = entry.ppn.as_u64();
            let touches_known = known
                .range(entry.ppn..PhysPageNum::new(base + span_pages))
                .next()
                .is_some();
            let base_addr = entry.ppn.base_addr();
            let touches_region = region.contains(base_addr)
                || region.contains(base_addr + (entry.page_size - 1))
                || (base_addr <= region.base()
                    && region.base().as_u64() < base_addr.as_u64() + entry.page_size);
            if entry.flags.user() && (touches_known || touches_region) {
                rep.violations.push(Violation::TlbMapsPtPage {
                    hart,
                    ppn: entry.ppn,
                });
            }
        }
    }
    for hart in &k.harts {
        scan(hart.id, hart.mmu.itlb(), region, known, rep);
        scan(hart.id, hart.mmu.dtlb(), region, known, rep);
    }
}

/// Invariant 4 (staleness half): every user TLB entry is *current* — some
/// live address space with the entry's ASID still backs the cached
/// translation — unless it is exempt: its invalidation is queued for a
/// deferred drain (pending, not lost), or no live address space owns the
/// ASID at all (a dead process's leftovers, unreachable until the ASID is
/// recycled — and recycling force-drains and flushes first).
fn check_tlb_staleness(k: &Kernel, rep: &mut InvariantReport) {
    // Post-rollover ASIDs can collide across live address spaces, so an
    // entry is judged against *every* live space carrying its ASID and
    // accepted when any of them backs it.
    let spaces: Vec<(u16, PhysPageNum)> = k
        .procs
        .handles()
        .filter(|(_, p)| p.mm_owner.is_none() && p.state != ProcState::Zombie)
        .map(|(_, p)| (p.aspace.asid, p.aspace.root))
        .collect();
    let pending = k.queued_flush_pairs();
    let root_level = k.cfg.scheme.root_level() as u8;
    for hart in &k.harts {
        for tlb in [hart.mmu.itlb(), hart.mmu.dtlb()] {
            for entry in tlb.entries() {
                if !entry.flags.user() {
                    continue;
                }
                rep.checks += 1;
                let span = entry.span_pages();
                let queued = pending
                    .iter()
                    .any(|&(a, v)| a == entry.asid && v.wrapping_sub(entry.vpn.as_u64()) < span);
                if queued {
                    continue;
                }
                let mut owners = spaces.iter().filter(|&&(a, _)| a == entry.asid).peekable();
                if owners.peek().is_none() {
                    continue;
                }
                if !owners.any(|&(_, root)| entry_backed_by(k, root, entry, root_level)) {
                    rep.violations.push(Violation::TlbStaleTranslation {
                        hart: hart.id,
                        asid: entry.asid,
                        vpn: entry.vpn.as_u64(),
                    });
                }
            }
        }
    }
}

/// True when a raw walk from `root` reaches a valid leaf that still backs
/// `entry`'s base page: same physical page, and at least the cached
/// permissions (the tables granting *more* than the TLB caches is the
/// benign permission-upgrade case; granting less means a tightening whose
/// shootdown never arrived).
fn entry_backed_by(
    k: &Kernel,
    root: PhysPageNum,
    entry: &ptstore_mmu::TlbEntry,
    root_level: u8,
) -> bool {
    let vpn = entry.vpn.as_u64();
    let mut page = root;
    let mut level = root_level;
    loop {
        let idx = (vpn >> (9 * u32::from(level))) & 0x1ff;
        let Ok(raw) = k.bus.mem().read_u64(page.base_addr() + idx * 8) else {
            return false;
        };
        let pte = Pte::from_bits(raw);
        if !pte.is_valid() {
            return false;
        }
        if pte.is_leaf() {
            let offset = vpn & ((1u64 << (9 * u32::from(level))) - 1);
            if pte.ppn().as_u64() + offset != entry.ppn.as_u64() {
                return false;
            }
            let f = pte.flags();
            return f.user()
                && (!entry.flags.readable() || f.readable())
                && (!entry.flags.writable() || f.writable())
                && (!entry.flags.executable() || f.executable());
        }
        if level == 0 {
            return false;
        }
        page = pte.ppn();
        level -= 1;
    }
}
