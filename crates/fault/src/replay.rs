//! Deterministic op-sequence replay: the model checker's transition relation.
//!
//! The bounded model checker (`ptstore-modelcheck`) cannot clone a
//! [`Kernel`], so it represents every frontier state as the op sequence that
//! reaches it and re-executes that sequence from a fresh boot whenever it
//! expands the state. This module owns the pieces that make such replay
//! meaningful:
//!
//! * [`ModelOp`] — a small, fully deterministic operation alphabet: the
//!   kernel ops the paper's mechanism must survive (fork/exit churn,
//!   mmap/munmap/mprotect, CoW breaks, secure-region adjustment, token
//!   re-validation, deferred-drain flushes) plus the attacker primitives of
//!   [`crate::inject`] with their randomized site selection replaced by
//!   state-derived deterministic choices (first eligible PTE slot, first
//!   other process as forgery victim, fixed probe addresses).
//! * [`apply`] — executes one op against a live kernel. Attacker ops follow
//!   the campaign's repair discipline: a *denied* fault restores its own
//!   scaffolding (satp put back, PCB bytes rewritten) so the machine state
//!   is exactly "the mechanism refused, nothing happened", while a *landed*
//!   fault leaves its corruption in place for the oracle to judge.
//! * [`replay`] / [`replay_trace`] — re-execute a whole trace on a fresh
//!   boot; `replay_trace` re-asserts the final oracle verdict, which is what
//!   makes a printed counterexample *replayable*: the shrinker uses it to
//!   validate every candidate shortening, and the regression tests use it to
//!   pin one counterexample per ablated defense.
//!
//! Determinism contract: `apply` consults no randomness and no ambient
//! state; two replays of the same trace from the same [`KernelConfig`]
//! produce byte-identical machines. Every op derives its concrete targets
//! (which child, which VMA, which PTE slot) from the kernel state at the
//! moment it runs, so a trace is self-contained.

use core::fmt;

use ptstore_core::{AccessContext, AccessKind, Channel, PrivilegeMode, VirtAddr, PAGE_SIZE};
use ptstore_kernel::pagetable::{USER_MMAP_BASE, USER_STACK_PAGES, USER_STACK_TOP};
use ptstore_kernel::process::VmPerms;
use ptstore_kernel::{
    GfpFlags, IpiFault, Kernel, KernelConfig, KernelError, Pid, ProcState, SbiCall, SbiResult,
};
use ptstore_mmu::{Pte, Satp, TranslateError};

use crate::oracle::{InvariantReport, Invariants};

/// One deterministic operation of the model checker's alphabet.
///
/// Kernel ops keep the per-hart worker discipline of the fuzz campaign:
/// every op starts and ends with each hart running its own worker process,
/// and a hart's ops only ever touch that worker's address space — so TLBs
/// never cache another hart's pages and dropped-IPI ops stay benign by
/// construction, exactly as the campaign classifies them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelOp {
    /// `fork` a child of hart `hart`'s worker (the token/zone hot path).
    Fork {
        /// Originating hart.
        hart: usize,
    },
    /// Exit and reap the newest live child of hart `hart`'s worker.
    ExitChild {
        /// Originating hart.
        hart: usize,
    },
    /// `mmap` one page on hart `hart`'s worker and write-touch it.
    Mmap {
        /// Originating hart.
        hart: usize,
    },
    /// `munmap` the newest mmap VMA of hart `hart`'s worker.
    Munmap {
        /// Originating hart.
        hart: usize,
    },
    /// `mprotect` the newest mmap VMA of hart `hart`'s worker to read-only
    /// (a permission tightening whose shootdown must not be lost).
    MprotectRo {
        /// Originating hart.
        hart: usize,
    },
    /// Touch the newest mmap VMA of hart `hart`'s worker.
    Touch {
        /// Originating hart.
        hart: usize,
        /// Write access (may fault after [`ModelOp::MprotectRo`]).
        write: bool,
    },
    /// Break CoW: switch to the newest live child, write-touch the newest
    /// mmap VMA it CoW-shares with the worker, switch back.
    CowBreak {
        /// Originating hart.
        hart: usize,
    },
    /// Grow the secure region by one adjustment chunk (§IV-C1).
    AdjustSecure,
    /// Re-run `switch_mm` for the current process: token validation plus a
    /// fresh `satp` write (the token *check* half of the token life cycle;
    /// [`ModelOp::Fork`] exercises token *creation*).
    TokenRecheck {
        /// Originating hart.
        hart: usize,
    },
    /// Drain hart `hart`'s deferred-shootdown queue now (an explicit drain
    /// boundary on top of whatever the configured policy does).
    Drain {
        /// Originating hart.
        hart: usize,
    },
    /// Attacker: flip one high PPN bit of the first valid non-leaf PTE in
    /// the worker's root table, through the regular store channel (the
    /// arbitrary-write primitive of §III-A aimed at a page table).
    PteFlip {
        /// Originating hart.
        hart: usize,
        /// Absolute PTE bit to flip; bits 28..40 redirect the walk outside
        /// physical memory, making a landed flip an unambiguous
        /// containment break.
        bit: u8,
    },
    /// Attacker: a rogue SBI `SecureRegionSet` asking the firmware to
    /// shrink the secure region (which would expose page tables).
    RogueRegionShrink,
    /// Attacker: corrupt hart `hart`'s `satp` to root translation at a
    /// freshly allocated normal-zone page, then force one walk.
    SatpCorrupt {
        /// Originating hart.
        hart: usize,
    },
    /// Attacker: forge the worker's PCB page-table pointer to the first
    /// other process's root, then drive `switch_mm` (the PT-Reuse attack).
    TokenForge {
        /// Originating hart.
        hart: usize,
    },
    /// Attacker: drop the next TLB-shootdown IPI to the next hart over,
    /// then unmap a page so the lost broadcast actually happens.
    DropIpi {
        /// Originating hart.
        hart: usize,
    },
}

impl fmt::Display for ModelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ModelOp::Fork { hart } => write!(f, "fork(h{hart})"),
            ModelOp::ExitChild { hart } => write!(f, "exit-child(h{hart})"),
            ModelOp::Mmap { hart } => write!(f, "mmap(h{hart})"),
            ModelOp::Munmap { hart } => write!(f, "munmap(h{hart})"),
            ModelOp::MprotectRo { hart } => write!(f, "mprotect-ro(h{hart})"),
            ModelOp::Touch { hart, write } => {
                write!(f, "touch(h{hart},{})", if write { "w" } else { "r" })
            }
            ModelOp::CowBreak { hart } => write!(f, "cow-break(h{hart})"),
            ModelOp::AdjustSecure => f.write_str("adjust-secure"),
            ModelOp::TokenRecheck { hart } => write!(f, "token-recheck(h{hart})"),
            ModelOp::Drain { hart } => write!(f, "drain(h{hart})"),
            ModelOp::PteFlip { hart, bit } => write!(f, "attack:pte-flip(h{hart},bit{bit})"),
            ModelOp::RogueRegionShrink => f.write_str("attack:rogue-region-shrink"),
            ModelOp::SatpCorrupt { hart } => write!(f, "attack:satp-corrupt(h{hart})"),
            ModelOp::TokenForge { hart } => write!(f, "attack:token-forge(h{hart})"),
            ModelOp::DropIpi { hart } => write!(f, "attack:ipi-drop(h{hart})"),
        }
    }
}

impl ModelOp {
    /// The hart the op runs on (0 for machine-wide ops).
    pub fn hart(&self) -> usize {
        match *self {
            ModelOp::Fork { hart }
            | ModelOp::ExitChild { hart }
            | ModelOp::Mmap { hart }
            | ModelOp::Munmap { hart }
            | ModelOp::MprotectRo { hart }
            | ModelOp::Touch { hart, .. }
            | ModelOp::CowBreak { hart }
            | ModelOp::TokenRecheck { hart }
            | ModelOp::Drain { hart }
            | ModelOp::PteFlip { hart, .. }
            | ModelOp::SatpCorrupt { hart }
            | ModelOp::TokenForge { hart }
            | ModelOp::DropIpi { hart } => hart,
            ModelOp::AdjustSecure | ModelOp::RogueRegionShrink => 0,
        }
    }

    /// True for the attacker primitives (the ops ablation counterexamples
    /// must contain at least one of).
    pub fn is_attack(&self) -> bool {
        matches!(
            self,
            ModelOp::PteFlip { .. }
                | ModelOp::RogueRegionShrink
                | ModelOp::SatpCorrupt { .. }
                | ModelOp::TokenForge { .. }
                | ModelOp::DropIpi { .. }
        )
    }
}

/// What applying one [`ModelOp`] did to the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome {
    /// A kernel op ran (successfully or with a tolerated kernel error).
    Mutated,
    /// An attacker op was refused by the mechanism/firmware and its
    /// scaffolding restored: the state is as if the attack never ran,
    /// except for refusal-side bookkeeping (cycles, security log).
    Denied,
    /// An attacker op took effect; its corruption is left in place.
    Landed,
    /// The op had no site (no child to exit, no VMA to unmap, one-hart
    /// machine for an IPI drop): state unchanged.
    Unavailable,
}

impl fmt::Display for OpOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpOutcome::Mutated => "mutated",
            OpOutcome::Denied => "denied",
            OpOutcome::Landed => "landed",
            OpOutcome::Unavailable => "unavailable",
        })
    }
}

/// Boots the model-checking machine: a fresh kernel per `cfg` with one
/// worker process forked per hart and each hart switched to its worker —
/// the same prologue the fuzz campaign uses, so oracle expectations carry
/// over.
///
/// # Panics
/// Panics when `cfg` cannot boot or the workers cannot spawn; model-checker
/// geometry is validated ahead of time, so this indicates a bug.
pub fn boot_model(cfg: &KernelConfig) -> Kernel {
    let mut k = Kernel::boot(*cfg).expect("model kernel boots");
    let harts = k.harts.len();
    k.set_active_hart(0);
    let workers: Vec<Pid> = (0..harts)
        .map(|_| k.sys_fork().expect("worker forks"))
        .collect();
    for (h, &w) in workers.iter().enumerate() {
        k.set_active_hart(h);
        k.do_switch_to(w).expect("worker switch");
    }
    k.set_active_hart(0);
    k
}

/// The newest live (non-zombie) child of `pid`.
fn newest_live_child(k: &Kernel, pid: Pid) -> Option<Pid> {
    let p = k.procs.get(pid)?;
    p.children
        .iter()
        .rev()
        .copied()
        .find(|&c| k.procs.get(c).is_some_and(|q| q.state != ProcState::Zombie))
}

/// The newest mmap-region VMA of `pid` (text/heap/stack excluded).
fn newest_mmap_vma(k: &Kernel, pid: Pid) -> Option<(u64, u64)> {
    let stack_base = USER_STACK_TOP - USER_STACK_PAGES * PAGE_SIZE;
    let p = k.procs.get(pid)?;
    p.vmas
        .iter()
        .rev()
        .find(|v| v.start >= USER_MMAP_BASE && v.start < stack_base)
        .map(|v| (v.start, v.end))
}

/// Applies one op to `k`. Deterministic: equal `(state, op)` pairs always
/// produce equal successor states (see the module docs for the contract).
pub fn apply(k: &mut Kernel, op: ModelOp) -> OpOutcome {
    match op {
        ModelOp::Fork { hart } => {
            k.set_active_hart(hart);
            match k.sys_fork() {
                Ok(_) => OpOutcome::Mutated,
                Err(_) => OpOutcome::Unavailable,
            }
        }
        ModelOp::ExitChild { hart } => {
            k.set_active_hart(hart);
            let worker = k.current_pid();
            let Some(child) = newest_live_child(k, worker) else {
                return OpOutcome::Unavailable;
            };
            if k.do_switch_to(child).is_err() {
                return OpOutcome::Unavailable;
            }
            let _ = k.sys_exit(0);
            if k.current_pid() != worker {
                let _ = k.do_switch_to(worker);
            }
            let _ = k.sys_wait();
            OpOutcome::Mutated
        }
        ModelOp::Mmap { hart } => {
            k.set_active_hart(hart);
            match k.sys_mmap(PAGE_SIZE) {
                Ok(va) => {
                    let _ = k.sys_touch(va, true);
                    OpOutcome::Mutated
                }
                Err(_) => OpOutcome::Unavailable,
            }
        }
        ModelOp::Munmap { hart } => {
            k.set_active_hart(hart);
            let Some((start, end)) = newest_mmap_vma(k, k.current_pid()) else {
                return OpOutcome::Unavailable;
            };
            let _ = k.sys_munmap(VirtAddr::new(start), end - start);
            OpOutcome::Mutated
        }
        ModelOp::MprotectRo { hart } => {
            k.set_active_hart(hart);
            let Some((start, end)) = newest_mmap_vma(k, k.current_pid()) else {
                return OpOutcome::Unavailable;
            };
            let _ = k.sys_mprotect(VirtAddr::new(start), end - start, VmPerms::RO);
            OpOutcome::Mutated
        }
        ModelOp::Touch { hart, write } => {
            k.set_active_hart(hart);
            let Some((start, _)) = newest_mmap_vma(k, k.current_pid()) else {
                return OpOutcome::Unavailable;
            };
            let _ = k.sys_touch(VirtAddr::new(start), write);
            OpOutcome::Mutated
        }
        ModelOp::CowBreak { hart } => {
            k.set_active_hart(hart);
            let worker = k.current_pid();
            let Some(child) = newest_live_child(k, worker) else {
                return OpOutcome::Unavailable;
            };
            let Some((start, _)) = newest_mmap_vma(k, child) else {
                return OpOutcome::Unavailable;
            };
            if k.do_switch_to(child).is_err() {
                return OpOutcome::Unavailable;
            }
            let _ = k.sys_touch(VirtAddr::new(start), true);
            let _ = k.do_switch_to(worker);
            OpOutcome::Mutated
        }
        ModelOp::AdjustSecure => match k.adjust_secure_region() {
            Ok(()) => OpOutcome::Mutated,
            Err(_) => OpOutcome::Unavailable,
        },
        ModelOp::TokenRecheck { hart } => {
            k.set_active_hart(hart);
            let pid = k.current_pid();
            let _ = k.activate_address_space(pid);
            OpOutcome::Mutated
        }
        ModelOp::Drain { hart } => {
            k.set_active_hart(hart);
            k.drain_deferred_flushes();
            OpOutcome::Mutated
        }
        ModelOp::PteFlip { hart, bit } => apply_pte_flip(k, hart, bit),
        ModelOp::RogueRegionShrink => {
            let Some(region) = k.secure_region() else {
                return OpOutcome::Unavailable;
            };
            let rogue = SbiCall::SecureRegionSet {
                new_base: region.base() + PAGE_SIZE,
            };
            match k.sbi_call(rogue) {
                SbiResult::Err(_) => OpOutcome::Denied,
                SbiResult::Ok | SbiResult::Region { .. } => OpOutcome::Landed,
            }
        }
        ModelOp::SatpCorrupt { hart } => apply_satp_corrupt(k, hart),
        ModelOp::TokenForge { hart } => apply_token_forge(k, hart),
        ModelOp::DropIpi { hart } => {
            let harts = k.harts.len();
            if harts < 2 {
                return OpOutcome::Unavailable;
            }
            k.inject_ipi_fault(IpiFault::DropNext {
                victim: (hart + 1) % harts,
            });
            k.set_active_hart(hart);
            if let Ok(va) = k.sys_mmap(PAGE_SIZE) {
                let _ = k.sys_touch(va, true);
                let _ = k.sys_munmap(va, PAGE_SIZE);
            }
            OpOutcome::Landed
        }
    }
}

/// Deterministic core of [`crate::inject::FaultInjector`]'s PTE bit flip:
/// the victim slot is the *first* valid non-leaf entry of the worker's root
/// table instead of a seeded pick.
fn apply_pte_flip(k: &mut Kernel, hart: usize, bit: u8) -> OpOutcome {
    k.set_active_hart(hart);
    let owner = k.mm_owner_of(k.current_pid());
    let Some(root) = k.process_root(owner) else {
        return OpOutcome::Unavailable;
    };
    let base = root.base_addr();
    let mut victim = None;
    for i in 0..512u64 {
        if let Ok(raw) = k.bus.mem().read_u64(base + i * 8) {
            let pte = Pte::from_bits(raw);
            if pte.is_valid() && !pte.is_leaf() {
                victim = Some(base + i * 8);
                break;
            }
        }
    }
    let Some(addr) = victim else {
        return OpOutcome::Unavailable;
    };
    let ctx = AccessContext::supervisor(k.satp_s_bit()).on_hart(hart);
    match k
        .bus
        .inject_bit_flip(addr, u32::from(bit), Channel::Regular, ctx)
    {
        Err(_) => OpOutcome::Denied,
        Ok(_) => OpOutcome::Landed,
    }
}

/// Deterministic core of the injector's `satp` corruption: fixed probe VA,
/// and a denied corruption restores `satp` and frees the decoy root (the
/// campaign's repair step, folded into the op so a denied attack leaves the
/// machine exactly where it was).
fn apply_satp_corrupt(k: &mut Kernel, hart: usize) -> OpOutcome {
    let old = k.harts[hart].mmu.satp;
    let Some(scheme) = old.scheme else {
        return OpOutcome::Unavailable;
    };
    let Ok(bogus) = k.alloc_page(GfpFlags::KERNEL.union(GfpFlags::ZERO)) else {
        return OpOutcome::Unavailable;
    };
    k.harts[hart].mmu.satp = Satp::new(scheme, bogus, old.asid, old.s_bit);
    let probe = VirtAddr::new(0x7a00_0000);
    let machine = &mut *k;
    let outcome = machine.harts[hart].mmu.translate_data(
        &mut machine.bus,
        probe,
        AccessKind::Read,
        PrivilegeMode::Supervisor,
    );
    match outcome {
        Err(TranslateError::AccessFault(_)) => {
            k.harts[hart].mmu.satp = old;
            let _ = k.free_page(bogus);
            OpOutcome::Denied
        }
        Err(TranslateError::PageFault { .. }) | Ok(_) => OpOutcome::Landed,
    }
}

/// Deterministic core of the injector's token forge: the forged pointer is
/// the first other process's root (the classic PT-Reuse victim), falling
/// back to a shifted pointer on a lone process. A refused forge rewrites
/// the PCB bytes it corrupted.
fn apply_token_forge(k: &mut Kernel, hart: usize) -> OpOutcome {
    let pid = k.harts[hart].current;
    if pid == 0 {
        return OpOutcome::Unavailable;
    }
    let owner = k.mm_owner_of(pid);
    let Some(slot) = k.pcb_pt_ptr_slot(owner) else {
        return OpOutcome::Unavailable;
    };
    let Ok(old) = k.bus.mem().read_u64(slot) else {
        return OpOutcome::Unavailable;
    };
    let forged = k
        .procs
        .pids()
        .find(|&p| p != owner)
        .and_then(|v| k.process_root(v))
        .map(|r| r.base_addr().as_u64())
        .filter(|&v| v != old)
        .unwrap_or(old + PAGE_SIZE);
    let slot_va = k.direct_map(slot);
    if k.attacker_write_u64(slot_va, forged).is_err() {
        return OpOutcome::Unavailable;
    }
    k.set_active_hart(hart);
    match k.activate_address_space(owner) {
        Err(KernelError::TokenInvalid(_)) | Err(KernelError::Access(_)) => {
            let _ = k.bus.mem_unchecked().write_u64(slot, old);
            OpOutcome::Denied
        }
        Err(_) | Ok(()) => OpOutcome::Landed,
    }
}

/// Re-executes `trace` on a fresh boot of `cfg` and returns the machine it
/// leaves behind.
pub fn replay(cfg: &KernelConfig, trace: &[ModelOp]) -> Kernel {
    let mut k = boot_model(cfg);
    for &op in trace {
        apply(&mut k, op);
    }
    k
}

/// Re-executes `trace` on a fresh boot of `cfg` and re-runs the invariant
/// oracle on the final state — the "replayable counterexample" primitive:
/// a trace the model checker prints violates an invariant iff this report
/// does.
pub fn replay_trace(cfg: &KernelConfig, trace: &[ModelOp]) -> InvariantReport {
    Invariants::check(&replay(cfg, trace))
}

/// Renders a trace the way the `reproduce modelcheck` counterexample
/// printer does: one numbered op per line.
pub fn format_trace(trace: &[ModelOp]) -> String {
    use core::fmt::Write;
    let mut out = String::new();
    for (i, op) in trace.iter().enumerate() {
        let _ = writeln!(out, "  {i:>3}: {op}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptstore_core::MIB;
    use ptstore_kernel::KernelConfig;

    fn model_cfg() -> KernelConfig {
        KernelConfig::cfi_ptstore()
            .with_mem_size(64 * MIB)
            .with_initial_secure_size(4 * MIB)
            .with_harts(2)
    }

    #[test]
    fn boot_model_is_oracle_clean() {
        let k = boot_model(&model_cfg());
        let rep = Invariants::check(&k);
        assert!(rep.ok(), "{:?}", rep.violations);
        // Every hart runs its own worker, no hart idles on the kernel root.
        for h in &k.harts {
            assert_ne!(h.current, 0);
        }
    }

    #[test]
    fn kernel_ops_stay_oracle_clean() {
        let cfg = model_cfg();
        let trace = [
            ModelOp::Mmap { hart: 0 },
            ModelOp::Fork { hart: 0 },
            ModelOp::CowBreak { hart: 0 },
            ModelOp::MprotectRo { hart: 0 },
            ModelOp::Touch {
                hart: 0,
                write: false,
            },
            ModelOp::Mmap { hart: 1 },
            ModelOp::Touch {
                hart: 1,
                write: true,
            },
            ModelOp::AdjustSecure,
            ModelOp::TokenRecheck { hart: 1 },
            ModelOp::Munmap { hart: 1 },
            ModelOp::Drain { hart: 0 },
            ModelOp::ExitChild { hart: 0 },
            ModelOp::Munmap { hart: 0 },
        ];
        let rep = replay_trace(&cfg, &trace);
        assert!(rep.ok(), "{:?}", rep.violations);
    }

    #[test]
    fn attacks_are_denied_and_leave_no_residue_when_defended() {
        let cfg = model_cfg();
        let mut k = boot_model(&cfg);
        assert_eq!(
            apply(&mut k, ModelOp::PteFlip { hart: 0, bit: 35 }),
            OpOutcome::Denied
        );
        assert_eq!(apply(&mut k, ModelOp::RogueRegionShrink), OpOutcome::Denied);
        assert_eq!(
            apply(&mut k, ModelOp::SatpCorrupt { hart: 1 }),
            OpOutcome::Denied
        );
        assert_eq!(
            apply(&mut k, ModelOp::TokenForge { hart: 0 }),
            OpOutcome::Denied
        );
        // Dropped IPIs land (nothing refuses them) but are benign under the
        // per-hart worker discipline.
        assert_eq!(
            apply(&mut k, ModelOp::DropIpi { hart: 0 }),
            OpOutcome::Landed
        );
        let rep = Invariants::check(&k);
        assert!(rep.ok(), "{:?}", rep.violations);
    }

    #[test]
    fn replay_is_deterministic() {
        let cfg = model_cfg();
        let trace = [
            ModelOp::Mmap { hart: 0 },
            ModelOp::Fork { hart: 1 },
            ModelOp::PteFlip { hart: 0, bit: 35 },
            ModelOp::DropIpi { hart: 1 },
            ModelOp::ExitChild { hart: 1 },
        ];
        let a = replay(&cfg, &trace);
        let b = replay(&cfg, &trace);
        assert_eq!(a.cycles.total(), b.cycles.total());
        assert_eq!(a.queued_flush_pairs(), b.queued_flush_pairs());
        for (ha, hb) in a.harts.iter().zip(b.harts.iter()) {
            assert_eq!(ha.mmu.satp, hb.mmu.satp);
        }
    }

    #[test]
    fn unavailable_ops_do_not_perturb_state() {
        let cfg = model_cfg();
        let mut k = boot_model(&cfg);
        // No child, no mmap VMA yet: these have no site.
        assert_eq!(
            apply(&mut k, ModelOp::ExitChild { hart: 0 }),
            OpOutcome::Unavailable
        );
        assert_eq!(
            apply(&mut k, ModelOp::Munmap { hart: 0 }),
            OpOutcome::Unavailable
        );
        assert_eq!(
            apply(&mut k, ModelOp::CowBreak { hart: 1 }),
            OpOutcome::Unavailable
        );
        assert!(Invariants::check(&k).ok());
    }

    #[test]
    fn format_trace_is_replayable_shape() {
        let trace = [ModelOp::Mmap { hart: 0 }, ModelOp::TokenForge { hart: 1 }];
        let s = format_trace(&trace);
        assert!(s.contains("0: mmap(h0)"));
        assert!(s.contains("1: attack:token-forge(h1)"));
    }
}
