//! # ptstore-fault — fault injection, invariant oracle, fuzz campaigns
//!
//! The paper's security argument (§V) is a case analysis: every way an
//! attacker can reach for the page tables is intercepted by a named layer
//! of the mechanism — the PMP S-bit, the dedicated `ld.pt`/`sd.pt`
//! channel, the PTW origin check, or token validation. This crate turns
//! that case analysis into an executable, adversarial test harness with
//! three parts:
//!
//! * **[`inject`]** — a deterministic, seeded fault injector. Each
//!   [`FaultClass`] models one way the
//!   mechanism can be attacked or can mis-operate: PTE bit flips through
//!   the regular channel, rogue PMP CSR (SBI) requests, corrupted `satp`
//!   roots, dropped or reordered TLB-shootdown IPIs, PTStore-zone
//!   exhaustion mid-`fork`, forged tokens, and drain-machinery faults (a
//!   queued remote invalidation silently discarded before its batched
//!   drain, or a watermark-triggered early drain skipped whole). Faults
//!   are addressable by
//!   site (hart, process, PTE slot) and trigger condition (cycle count,
//!   Nth bus access, trace-counter predicate) and are injected through
//!   the same architectural paths an attacker would use, so the modeled
//!   hardware gets to adjudicate them.
//!
//! * **[`oracle`]** — a machine-wide invariant oracle
//!   ([`Invariants::check`]) verifying, from raw (DRAM's-eye) state: every
//!   reachable page-table page lives inside the secure region and is
//!   tracked by its owner; each hart's `satp` root matches the address
//!   space of the process it runs and its token binding holds; the PMP
//!   mirrors the kernel's view of the region; no TLB entry grants
//!   user access to page-table storage; and no user TLB entry caches a
//!   translation the live page tables no longer back (unless its
//!   invalidation is still queued for a deferred drain).
//!
//! * **[`campaign`]** — a seeded randomized campaign driver
//!   ([`run_campaign`]): N runs, each booting a fresh kernel, running a
//!   seeded syscall workload across H harts, injecting exactly one fault,
//!   and classifying the run as *detected-and-contained*, *benign*, or
//!   *invariant-violated*. With the full mechanism enabled the violated
//!   count is zero by construction; disabling any single check via the
//!   [`KernelConfig`](ptstore_kernel::KernelConfig) ablation switches
//!   flips its fault class to *invariant-violated*.
//!
//! * **[`mod@replay`]** — a deterministic op-sequence replay layer: the
//!   model checker's operation alphabet ([`ModelOp`]) pairing the kernel
//!   ops above with de-randomized versions of the injector's attacker
//!   primitives, plus [`replay_trace`], which re-executes a printed
//!   counterexample on a fresh machine and re-asserts the oracle verdict.
//!   `ptstore-modelcheck` builds its bounded exhaustive search on top.
//!
//! ```
//! use ptstore_fault::{run_campaign, CampaignConfig, RunClass};
//!
//! let report = run_campaign(&CampaignConfig::quick(7, 7, 2));
//! assert_eq!(report.count(RunClass::InvariantViolated), 0);
//! ```

#![deny(missing_docs)]

pub mod campaign;
pub mod inject;
pub mod oracle;
pub mod replay;

pub use campaign::{run_campaign, run_one, CampaignConfig, CampaignReport, RunClass, RunResult};
pub use inject::{DetectedBy, FaultInjector, FaultPlan, InjectOutcome, Trigger};
pub use oracle::{InvariantReport, Invariants, Violation};
pub use ptstore_trace::FaultClass;
pub use replay::{apply, boot_model, format_trace, replay, replay_trace, ModelOp, OpOutcome};
