//! The deterministic fault injector.
//!
//! Faults are injected through the *architectural* surfaces an attacker or
//! a glitch would use — the regular store channel, the SBI, the `satp`
//! CSR, the IPI fabric, the allocator, the PCB — never by silently
//! patching simulator state. That way the modeled mechanism adjudicates
//! each fault exactly as the hardware would, and the injector can report
//! which layer (if any) refused it.

use ptstore_core::{AccessContext, AccessError, Channel, PhysAddr, PhysPageNum, PAGE_SIZE};
use ptstore_kernel::{
    DrainFault, GfpFlags, IpiFault, Kernel, KernelError, Pid, SbiCall, SbiResult,
};
use ptstore_mmu::{Pte, Satp, TranslateError};
use ptstore_trace::{FaultClass, RejectingLayer, TraceEvent};
use rand::rngs::StdRng;
use rand::Rng;

/// When a planted fault goes off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire the moment the injector is polled.
    Immediate,
    /// Fire once the machine-wide cycle counter reaches this value.
    AtCycle(u64),
    /// Fire once the bus has served this many total accesses.
    AfterBusAccesses(u64),
    /// Fire once the trace counters have seen this many syscalls
    /// (a trace-event predicate; requires an attached sink).
    AfterSyscalls(u64),
}

impl Trigger {
    /// True once the trigger condition holds on `k`.
    pub fn ready(&self, k: &Kernel) -> bool {
        match *self {
            Trigger::Immediate => true,
            Trigger::AtCycle(c) => k.cycles.total() >= c,
            Trigger::AfterBusAccesses(n) => k.bus.stats().total() >= n,
            // Without a sink the predicate can never be observed; fall
            // through to ready so the campaign cannot stall.
            Trigger::AfterSyscalls(n) => k.trace_sink().is_none_or(|s| s.counters().syscalls >= n),
        }
    }
}

impl core::fmt::Display for Trigger {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Trigger::Immediate => f.write_str("immediate"),
            Trigger::AtCycle(c) => write!(f, "at-cycle {c}"),
            Trigger::AfterBusAccesses(n) => write!(f, "after-bus-accesses {n}"),
            Trigger::AfterSyscalls(n) => write!(f, "after-syscalls {n}"),
        }
    }
}

/// One planned fault: what, where, and when.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// The fault class to inject.
    pub class: FaultClass,
    /// When to fire.
    pub trigger: Trigger,
    /// The hart the fault originates on (or whose state it corrupts).
    pub hart: usize,
    /// Class-specific knob drawn at planning time (bit index, slot pick).
    pub param: u64,
}

impl FaultPlan {
    /// Draws a randomized plan for `class` against the current machine:
    /// the hart and class parameter come from `rng`, the trigger is set a
    /// short, random distance ahead of the machine's current counters so
    /// the workload keeps running before the fault lands.
    pub fn random(class: FaultClass, k: &Kernel, rng: &mut StdRng) -> Self {
        let hart = (rng.random::<u64>() as usize) % k.harts.len();
        let param = rng.random::<u64>();
        let trigger = match rng.random::<u64>() % 4 {
            0 => Trigger::Immediate,
            1 => Trigger::AtCycle(k.cycles.total() + 1 + rng.random::<u64>() % 200_000),
            2 => Trigger::AfterBusAccesses(k.bus.stats().total() + 1 + rng.random::<u64>() % 4_000),
            _ => {
                let now = k.trace_sink().map_or(0, |s| s.counters().syscalls);
                Trigger::AfterSyscalls(now + 1 + rng.random::<u64>() % 24)
            }
        };
        Self {
            class,
            trigger,
            hart,
            param,
        }
    }
}

/// Who stopped (or failed to stop) an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectedBy {
    /// A mechanism layer denied the faulted operation.
    Mechanism(RejectingLayer),
    /// The M-mode SBI firmware refused the request.
    Firmware,
    /// The kernel allocator contained the fault (clean `ENOMEM` or a
    /// dynamic secure-region adjustment absorbed the pressure).
    Allocator,
}

impl core::fmt::Display for DetectedBy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DetectedBy::Mechanism(layer) => write!(f, "{layer}"),
            DetectedBy::Firmware => f.write_str("sbi-firmware"),
            DetectedBy::Allocator => f.write_str("allocator"),
        }
    }
}

/// What happened when the fault fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectOutcome {
    /// The mechanism (or firmware/allocator) refused the faulted action;
    /// machine state is unchanged apart from the refusal itself.
    Denied(DetectedBy),
    /// The fault took effect: the architecture allowed the action.
    Landed,
    /// The fault site was unavailable (e.g. an IPI fault on a single-hart
    /// machine); nothing was injected.
    Skipped,
}

/// Undo information recorded by a landed fault so the campaign can restore
/// a detected-and-repaired machine before the final oracle sweep.
#[derive(Debug, Clone, Copy)]
enum Undo {
    None,
    BitFlip {
        addr: PhysAddr,
        old: u64,
    },
    Satp {
        hart: usize,
        old: Satp,
        probe_page: Option<PhysPageNum>,
    },
    TokenSlot {
        slot: PhysAddr,
        old: u64,
    },
    Zone,
}

/// A single-shot fault injector executing one [`FaultPlan`].
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    fired: bool,
    undo: Undo,
}

impl FaultInjector {
    /// An injector armed with `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            fired: false,
            undo: Undo::None,
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True once the plan's trigger condition holds (always false after
    /// the fault has fired).
    pub fn ready(&self, k: &Kernel) -> bool {
        !self.fired && self.plan.trigger.ready(k)
    }

    /// Fires the planned fault against `k`. Emits a
    /// [`TraceEvent::FaultInjected`] marker, performs the class-specific
    /// action through its architectural surface, and reports whether the
    /// mechanism denied it, it landed, or the site was unavailable.
    pub fn fire(&mut self, k: &mut Kernel, rng: &mut StdRng) -> InjectOutcome {
        self.fired = true;
        if let Some(sink) = k.trace_sink() {
            sink.emit(TraceEvent::FaultInjected {
                kind: self.plan.class,
                hart: self.plan.hart as u32,
            });
        }
        match self.plan.class {
            FaultClass::PteBitFlip => self.fire_pte_bit_flip(k, rng),
            FaultClass::PmpCsrCorrupt => self.fire_pmp_csr_corrupt(k),
            FaultClass::SatpCorrupt => self.fire_satp_corrupt(k),
            FaultClass::IpiDrop | FaultClass::IpiReorder => self.fire_ipi_fault(k),
            FaultClass::ZoneExhaust => self.fire_zone_exhaust(k),
            FaultClass::TokenForge => self.fire_token_forge(k, rng),
            FaultClass::DrainDrop | FaultClass::WatermarkSkip => self.fire_drain_fault(k),
        }
    }

    /// Restores the machine state a *landed* fault corrupted (bit flipped
    /// back, `satp` restored, PCB slot rewritten, PTStore zone refilled).
    /// A no-op for denied, skipped, or side-effect-free faults.
    pub fn repair(&mut self, k: &mut Kernel) {
        match core::mem::replace(&mut self.undo, Undo::None) {
            Undo::None => {}
            Undo::BitFlip { addr, old } => {
                // Infrastructure-level restore: the checked channels would
                // charge (and under PTStore, refuse) this write.
                let _ = k.bus.mem_unchecked().write_u64(addr, old);
            }
            Undo::Satp {
                hart,
                old,
                probe_page,
            } => {
                k.harts[hart].mmu.satp = old;
                if let Some(ppn) = probe_page {
                    let _ = k.free_page(ppn);
                }
            }
            Undo::TokenSlot { slot, old } => {
                let _ = k.bus.mem_unchecked().write_u64(slot, old);
            }
            Undo::Zone => k.refill_pt_zone(),
        }
    }

    /// A regular-channel store flips one PPN bit of a live non-leaf PTE —
    /// the attacker's arbitrary-write primitive aimed at a page table. The
    /// flipped bit is chosen from the high PPN bits so a landed flip
    /// redirects the walk outside physical memory (an unambiguous
    /// containment violation for the oracle).
    fn fire_pte_bit_flip(&mut self, k: &mut Kernel, rng: &mut StdRng) -> InjectOutcome {
        let pids: Vec<Pid> = k.procs.pids().collect();
        if pids.is_empty() {
            return InjectOutcome::Skipped;
        }
        let pid = pids[(self.plan.param as usize) % pids.len()];
        let Some(root) = k.process_root(pid) else {
            return InjectOutcome::Skipped;
        };
        // Scan the root page raw for valid non-leaf slots (pointers at
        // next-level tables); pick one of them as the victim PTE.
        let base = root.base_addr();
        let mut candidates = Vec::new();
        for i in 0..512u64 {
            if let Ok(raw) = k.bus.mem().read_u64(base + i * 8) {
                let pte = Pte::from_bits(raw);
                if pte.is_valid() && !pte.is_leaf() {
                    candidates.push(base + i * 8);
                }
            }
        }
        let Some(&addr) = candidates.get((rng.random::<u64>() as usize) % candidates.len().max(1))
        else {
            return InjectOutcome::Skipped;
        };
        // PTE bits 28..40 are PPN bits mapping to physical address bits
        // 30..42 — beyond any configured memory size, so a landed flip is
        // always a containment break, never a lucky alias of another
        // page-table page.
        let bit = 28 + rng.random::<u64>() % 12;
        let old = match k.bus.mem().read_u64(addr) {
            Ok(v) => v,
            Err(_) => return InjectOutcome::Skipped,
        };
        let ctx = AccessContext::supervisor(k.satp_s_bit()).on_hart(self.plan.hart);
        match k
            .bus
            .inject_bit_flip(addr, bit as u32, Channel::Regular, ctx)
        {
            Err(e) => InjectOutcome::Denied(mechanism_of(&e)),
            Ok(_) => {
                self.undo = Undo::BitFlip { addr, old };
                InjectOutcome::Landed
            }
        }
    }

    /// A rogue SBI `SecureRegionSet` asking the firmware to *shrink* the
    /// secure region (raise its base), which would expose page tables to
    /// regular stores. The M-mode firmware owns the PMP and must refuse.
    fn fire_pmp_csr_corrupt(&mut self, k: &mut Kernel) -> InjectOutcome {
        let Some(region) = k.secure_region() else {
            return InjectOutcome::Skipped;
        };
        let rogue = SbiCall::SecureRegionSet {
            new_base: region.base() + PAGE_SIZE,
        };
        match k.sbi_call(rogue) {
            SbiResult::Err(_) => InjectOutcome::Denied(DetectedBy::Firmware),
            // Success would leave the PMP disagreeing with the kernel's
            // region bookkeeping — exactly what the oracle's PMP
            // consistency invariant exists to flag.
            SbiResult::Ok | SbiResult::Region { .. } => InjectOutcome::Landed,
        }
    }

    /// Corrupts the planned hart's `satp` to root translation at a freshly
    /// allocated normal-zone page (outside the secure region), then forces
    /// one walk. With the PTW origin check armed the walker refuses to
    /// fetch PTEs from outside the region; without it the bogus root is
    /// consumed silently and the oracle must catch the mismatch.
    fn fire_satp_corrupt(&mut self, k: &mut Kernel) -> InjectOutcome {
        let hart = self.plan.hart;
        let old = k.harts[hart].mmu.satp;
        let Some(scheme) = old.scheme else {
            return InjectOutcome::Skipped; // Bare mode: nothing to corrupt
        };
        let Ok(bogus) = k.alloc_page(GfpFlags::KERNEL.union(GfpFlags::ZERO)) else {
            return InjectOutcome::Skipped;
        };
        k.harts[hart].mmu.satp = Satp::new(scheme, bogus, old.asid, old.s_bit);
        self.undo = Undo::Satp {
            hart,
            old,
            probe_page: Some(bogus),
        };
        // Probe with a never-touched user VA so the D-TLB cannot satisfy
        // it and the walk must consult the (corrupted) root.
        let probe = ptstore_core::VirtAddr::new(0x7a00_0000 + (self.plan.param % 64) * PAGE_SIZE);
        let machine = &mut *k;
        let outcome = machine.harts[hart].mmu.translate_data(
            &mut machine.bus,
            probe,
            ptstore_core::AccessKind::Read,
            ptstore_core::PrivilegeMode::Supervisor,
        );
        match outcome {
            Err(TranslateError::AccessFault(e)) => InjectOutcome::Denied(mechanism_of(&e)),
            Err(TranslateError::PageFault { .. }) | Ok(_) => InjectOutcome::Landed,
        }
    }

    /// Plants an IPI fabric fault (drop or reorder), then performs one
    /// mapping change on the planned hart so the next TLB shootdown
    /// actually consumes it.
    fn fire_ipi_fault(&mut self, k: &mut Kernel) -> InjectOutcome {
        let harts = k.harts.len();
        if harts < 2 {
            return InjectOutcome::Skipped;
        }
        let hart = self.plan.hart;
        let fault = match self.plan.class {
            FaultClass::IpiDrop => IpiFault::DropNext {
                victim: (hart + 1 + (self.plan.param as usize) % (harts - 1)) % harts,
            },
            _ => IpiFault::ReorderNext,
        };
        k.inject_ipi_fault(fault);
        // Exercise: map, touch, and unmap one page — the unmap broadcasts
        // the shootdown the planted fault perturbs.
        k.set_active_hart(hart);
        if let Ok(va) = k.sys_mmap(PAGE_SIZE) {
            let _ = k.sys_touch(va, true);
            let _ = k.sys_munmap(va, PAGE_SIZE);
        }
        InjectOutcome::Landed
    }

    /// Plants a drain-machinery fault, then drives a paging-churn burst on
    /// the planned hart so the deferred-shootdown queue fills and the next
    /// drain (or watermark trigger) consumes it. `DrainDrop` discards one
    /// queued remote invalidation before the broadcast — the missed-drain
    /// kernel bug the oracle's TLB staleness sweep must flag whenever the
    /// lost page was cached remotely. `WatermarkSkip` suppresses one
    /// watermark-triggered early drain, which the next security boundary
    /// makes up for — benign by design. Both need batching on an SMP
    /// machine (and the skip needs a watermark policy) to have a site.
    fn fire_drain_fault(&mut self, k: &mut Kernel) -> InjectOutcome {
        if k.harts.len() < 2 || !k.cfg.deferred_shootdowns {
            return InjectOutcome::Skipped;
        }
        let depth = match (self.plan.class, k.cfg.drain_policy.watermark_depth()) {
            // The skip has no site without a watermark to trigger.
            (FaultClass::WatermarkSkip, None) => return InjectOutcome::Skipped,
            (_, Some(d)) => u64::from(d),
            (_, None) => 4,
        };
        let fault = if self.plan.class == FaultClass::DrainDrop {
            DrainFault::DropQueuedNext {
                index: self.plan.param,
            }
        } else {
            DrainFault::SkipWatermarkNext
        };
        k.inject_drain_fault(fault);
        // Exercise: map, touch, and unmap enough pages to cross any
        // watermark — the unmap queues the invalidations and its
        // end-of-operation boundary drain delivers (or loses) them.
        k.set_active_hart(self.plan.hart);
        if let Ok(va) = k.sys_mmap((depth + 1) * PAGE_SIZE) {
            for i in 0..=depth {
                let _ = k.sys_touch(
                    ptstore_core::VirtAddr::new(va.as_u64() + i * PAGE_SIZE),
                    true,
                );
            }
            let _ = k.sys_munmap(va, (depth + 1) * PAGE_SIZE);
        }
        if k.drain_fault_pending() {
            // No drain ran (the churn never queued — e.g. OOM): disarm so
            // the fault cannot leak into post-run steps, and report the
            // site as unavailable.
            let _ = k.take_drain_fault();
            return InjectOutcome::Skipped;
        }
        InjectOutcome::Landed
    }

    /// Drains every free page of the PTStore zone, then attempts a `fork`
    /// mid-exhaustion. Containment means either a clean `ENOMEM` or a
    /// dynamic secure-region adjustment absorbing the pressure.
    fn fire_zone_exhaust(&mut self, k: &mut Kernel) -> InjectOutcome {
        if k.pt_area_free_pages().is_none() {
            return InjectOutcome::Skipped;
        }
        let adjustments_before = k.stats.adjustments;
        k.drain_pt_zone();
        self.undo = Undo::Zone;
        k.set_active_hart(self.plan.hart);
        match k.sys_fork() {
            Err(KernelError::OutOfMemory) => InjectOutcome::Denied(DetectedBy::Allocator),
            Err(_) => InjectOutcome::Landed,
            Ok(child) => {
                // Reap the probe child to leave the process set balanced.
                let _ = k.do_switch_to(child);
                let _ = k.sys_exit(0);
                let _ = k.sys_wait();
                if k.stats.adjustments > adjustments_before {
                    InjectOutcome::Denied(DetectedBy::Allocator)
                } else {
                    InjectOutcome::Landed
                }
            }
        }
    }

    /// Forges the running process's PCB page-table pointer (an attacker
    /// regular-store into normal memory — always possible under the threat
    /// model), then drives the kernel through `switch_mm`. With token
    /// checks on, validation refuses the forged pointer; with them off,
    /// the bogus root reaches `satp`.
    fn fire_token_forge(&mut self, k: &mut Kernel, rng: &mut StdRng) -> InjectOutcome {
        let hart = self.plan.hart;
        let pid = k.harts[hart].current;
        if pid == 0 {
            return InjectOutcome::Skipped;
        }
        let owner = k.mm_owner_of(pid);
        let Some(slot) = k.pcb_pt_ptr_slot(owner) else {
            return InjectOutcome::Skipped;
        };
        let Ok(old) = k.bus.mem().read_u64(slot) else {
            return InjectOutcome::Skipped;
        };
        // Prefer the classic reuse attack — another process's root — and
        // fall back to a shifted pointer when this is the only process.
        let victims: Vec<Pid> = k.procs.pids().filter(|&p| p != owner).collect();
        let forged = victims
            .get((rng.random::<u64>() as usize) % victims.len().max(1))
            .and_then(|&v| k.process_root(v))
            .map(|r| r.base_addr().as_u64())
            .filter(|&v| v != old)
            .unwrap_or(old + PAGE_SIZE);
        let slot_va = k.direct_map(slot);
        if k.attacker_write_u64(slot_va, forged).is_err() {
            // The PCB itself was unreachable — nothing was injected.
            return InjectOutcome::Skipped;
        }
        self.undo = Undo::TokenSlot { slot, old };
        k.set_active_hart(hart);
        match k.activate_address_space(owner) {
            Err(KernelError::TokenInvalid(_)) => {
                InjectOutcome::Denied(DetectedBy::Mechanism(RejectingLayer::TokenValidation))
            }
            Err(KernelError::Access(e)) => InjectOutcome::Denied(mechanism_of(&e)),
            Err(_) => InjectOutcome::Landed,
            Ok(()) => InjectOutcome::Landed,
        }
    }
}

/// Maps a hardware access fault to the mechanism layer that raised it.
fn mechanism_of(e: &AccessError) -> DetectedBy {
    DetectedBy::Mechanism(match e {
        AccessError::SecureRegionDenied { .. } => RejectingLayer::PmpSBit,
        AccessError::PtwOutsideRegion { .. } => RejectingLayer::PtwOriginCheck,
        _ => RejectingLayer::PmpChannel,
    })
}
