//! The seeded randomized campaign driver.
//!
//! A campaign is N independent runs. Each run boots a **fresh** kernel,
//! spawns one worker process per hart, drives a seeded syscall workload
//! that rotates across the harts, injects exactly one planned fault when
//! its trigger condition fires, and classifies the result:
//!
//! * **detected-and-contained** — a mechanism layer (PMP S-bit, PTW
//!   origin check, token validation), the SBI firmware, or the allocator
//!   refused the fault, and after repairing any collateral the invariant
//!   oracle finds the machine healthy;
//! * **benign** — the fault landed but changed nothing the mechanism
//!   promises about (e.g. a reordered shootdown ack);
//! * **invariant-violated** — the oracle found corrupted translation
//!   state the mechanism failed to stop.
//!
//! Everything derives from the campaign seed, so a run is reproducible
//! bit-for-bit: same seed, same faults, same classification.

use ptstore_core::{VirtAddr, MIB, PAGE_SIZE};
use ptstore_kernel::{DrainPolicy, Kernel, KernelConfig, Pid};
use ptstore_trace::{FaultClass, TraceCounters, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::inject::{DetectedBy, FaultInjector, FaultPlan, InjectOutcome, Trigger};
use crate::oracle::Invariants;

/// Campaign parameters (`reproduce fuzz` maps its flags onto this).
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; every run seed derives from it.
    pub seed: u64,
    /// Number of runs (one fault each).
    pub faults: u64,
    /// Harts per machine.
    pub harts: usize,
    /// Physical memory per machine, bytes.
    pub mem_size: u64,
    /// Initial secure-region size, bytes.
    pub secure_size: u64,
    /// Workload operations per run (split around the injection point).
    pub ops_per_run: u64,
    /// Run the oracle after every operation, not just at the checkpoints.
    pub paranoid: bool,
    /// Fault classes to cycle through (round-robin over the runs).
    pub classes: Vec<FaultClass>,
    /// Kernel configuration override; `None` boots the full PTStore
    /// mechanism (`cfi_ptstore`) with the geometry above.
    pub kernel: Option<KernelConfig>,
}

impl CampaignConfig {
    /// The standard campaign: full mechanism, 128 MiB machines with an
    /// 8 MiB secure region, all fault classes.
    pub fn new(seed: u64, faults: u64, harts: usize) -> Self {
        Self {
            seed,
            faults,
            harts,
            mem_size: 128 * MIB,
            secure_size: 8 * MIB,
            ops_per_run: 32,
            paranoid: false,
            classes: FaultClass::ALL.to_vec(),
            kernel: None,
        }
    }

    /// A small paranoid campaign for tests and the CI smoke check.
    pub fn quick(seed: u64, faults: u64, harts: usize) -> Self {
        Self {
            ops_per_run: 16,
            paranoid: true,
            ..Self::new(seed, faults, harts)
        }
    }

    /// The kernel configuration each run boots.
    pub fn kernel_config(&self) -> KernelConfig {
        self.kernel.unwrap_or_else(|| {
            KernelConfig::cfi_ptstore()
                .with_mem_size(self.mem_size)
                .with_initial_secure_size(self.secure_size)
                .with_harts(self.harts)
        })
    }
}

/// Classification of one campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunClass {
    /// The fault was refused (or its pressure absorbed) and the machine
    /// is invariant-clean afterwards.
    DetectedAndContained,
    /// The fault landed without breaking any mechanism invariant.
    Benign,
    /// The oracle found corrupted translation state.
    InvariantViolated,
}

impl core::fmt::Display for RunClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            RunClass::DetectedAndContained => "detected-and-contained",
            RunClass::Benign => "benign",
            RunClass::InvariantViolated => "invariant-violated",
        })
    }
}

/// The record of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Run index within the campaign.
    pub run: u64,
    /// Derived seed the run used.
    pub seed: u64,
    /// Fault class injected.
    pub class: FaultClass,
    /// Trigger that released the fault.
    pub trigger: Trigger,
    /// True when the fault was actually injected (false = site
    /// unavailable, e.g. IPI faults on one hart).
    pub injected: bool,
    /// Classification.
    pub outcome: RunClass,
    /// Who refused the fault, when it was refused.
    pub detected_by: Option<DetectedBy>,
    /// Oracle checks evaluated over the run.
    pub checks: u64,
    /// Total invariant violations observed.
    pub violations: u64,
    /// Human-readable first violation, for debugging.
    pub first_violation: Option<String>,
}

/// A finished campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The master seed.
    pub seed: u64,
    /// Harts per machine.
    pub harts: usize,
    /// Every run, in order.
    pub runs: Vec<RunResult>,
}

impl CampaignReport {
    /// Number of runs classified as `class`.
    pub fn count(&self, class: RunClass) -> u64 {
        self.runs.iter().filter(|r| r.outcome == class).count() as u64
    }

    /// Runs of `fault` classified as `class`.
    pub fn count_class(&self, fault: FaultClass, class: RunClass) -> u64 {
        self.runs
            .iter()
            .filter(|r| r.class == fault && r.outcome == class)
            .count() as u64
    }

    /// A deterministic multi-line summary (what `reproduce fuzz` prints).
    pub fn summary(&self) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fuzz campaign: seed={} runs={} harts={}",
            self.seed,
            self.runs.len(),
            self.harts
        );
        let _ = writeln!(
            out,
            "  detected-and-contained : {}",
            self.count(RunClass::DetectedAndContained)
        );
        let _ = writeln!(
            out,
            "  benign                 : {}",
            self.count(RunClass::Benign)
        );
        let _ = writeln!(
            out,
            "  invariant-violated     : {}",
            self.count(RunClass::InvariantViolated)
        );
        let _ = writeln!(out, "  per fault class:");
        for &fc in &FaultClass::ALL {
            let d = self.count_class(fc, RunClass::DetectedAndContained);
            let b = self.count_class(fc, RunClass::Benign);
            let v = self.count_class(fc, RunClass::InvariantViolated);
            if d + b + v == 0 {
                continue;
            }
            let _ = writeln!(out, "    {fc:<16} detected={d} benign={b} violated={v}");
        }
        if let Some(r) = self
            .runs
            .iter()
            .find(|r| r.outcome == RunClass::InvariantViolated)
        {
            let _ = writeln!(
                out,
                "  first violation: run={} seed={} class={} ({})",
                r.run,
                r.seed,
                r.class,
                r.first_violation.as_deref().unwrap_or("?")
            );
        }
        out
    }
}

/// Runs a full campaign per `cfg`.
///
/// # Panics
/// Panics when the derived kernel configuration cannot boot — campaign
/// geometry is validated, so this indicates a bug, not a fault.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut master = StdRng::seed_from_u64(cfg.seed);
    let kcfg = cfg.kernel_config();
    let mut runs = Vec::with_capacity(cfg.faults as usize);
    for i in 0..cfg.faults {
        let run_seed = master.random::<u64>();
        let class = cfg.classes[(i as usize) % cfg.classes.len().max(1)];
        runs.push(run_one(
            &class_config(&kcfg, class),
            class,
            run_seed,
            i,
            cfg.ops_per_run,
            cfg.paranoid,
        ));
    }
    CampaignReport {
        seed: cfg.seed,
        harts: cfg.harts,
        runs,
    }
}

/// The kernel configuration a given fault class boots. Drain-machinery
/// faults need a site to exist — deferred shootdowns on, and (for the
/// watermark skip) a watermark drain policy — so those two classes turn
/// the relevant features on over the campaign's base configuration;
/// every other class boots it unchanged.
fn class_config(base: &KernelConfig, class: FaultClass) -> KernelConfig {
    match class {
        FaultClass::DrainDrop => base.with_deferred_shootdowns(true),
        FaultClass::WatermarkSkip => base
            .with_deferred_shootdowns(true)
            .with_drain_policy(DrainPolicy::Watermark { depth: 4 }),
        _ => *base,
    }
}

/// Executes one run: fresh kernel, seeded workload, one fault, verdict.
///
/// # Panics
/// Panics when `kcfg` cannot boot (see [`run_campaign`]).
pub fn run_one(
    kcfg: &KernelConfig,
    class: FaultClass,
    run_seed: u64,
    run_index: u64,
    ops: u64,
    paranoid: bool,
) -> RunResult {
    let mut rng = StdRng::seed_from_u64(run_seed);
    let mut k = Kernel::boot(*kcfg).expect("campaign kernel boots");
    let sink = TraceSink::new();
    k.set_trace_sink(Some(sink.clone()));

    let mut wl = Workload::spawn(&mut k);
    for _ in 0..4 {
        wl.step(&mut k, &mut rng);
    }

    let plan = FaultPlan::random(class, &k, &mut rng);
    let mut injector = FaultInjector::new(plan);
    let mut checks = 0u64;
    let mut violations: Vec<String> = Vec::new();

    // Pre-injection phase: run until the trigger fires (bounded by the
    // op budget so a far trigger still fires, just later).
    let mut steps = 0;
    while !injector.ready(&k) && steps < ops {
        wl.step(&mut k, &mut rng);
        steps += 1;
    }
    let outcome = injector.fire(&mut k, &mut rng);
    let injected = outcome != InjectOutcome::Skipped;
    let mut detected_by = match outcome {
        InjectOutcome::Denied(by) => Some(by),
        _ => None,
    };

    // A *detected* fault is repaired before the first oracle sweep: the
    // mechanism already refused it, so the injector's own scaffolding
    // (bogus satp write, forged PCB bytes, drained zone) is debris, not
    // live state the mechanism failed to stop. A *landed* fault is left
    // in place so the oracle judges it.
    if detected_by.is_some() {
        injector.repair(&mut k);
    }

    // Oracle immediately after injection: a landed corruption must be
    // flagged here, before further execution compounds it.
    let rep = Invariants::check(&k);
    checks += rep.checks;
    record(&rep, &mut violations);

    if violations.is_empty() {
        let denials_at_injection = denials(&sink.counters());
        for _ in steps..ops {
            wl.step(&mut k, &mut rng);
            if paranoid {
                let rep = Invariants::check(&k);
                checks += rep.checks;
                record(&rep, &mut violations);
                if !violations.is_empty() {
                    break;
                }
            }
        }
        if violations.is_empty() {
            let rep = Invariants::check(&k);
            checks += rep.checks;
            record(&rep, &mut violations);
        }
        // Denials raised while post-injection state was still faulted
        // also count as detection (e.g. a stale corrupted path retried).
        if detected_by.is_none() && denials(&sink.counters()) > denials_at_injection {
            detected_by = Some(DetectedBy::Mechanism(
                ptstore_trace::RejectingLayer::PmpSBit,
            ));
        }
    }

    let outcome = if !violations.is_empty() {
        RunClass::InvariantViolated
    } else if detected_by.is_some() {
        RunClass::DetectedAndContained
    } else {
        RunClass::Benign
    };
    RunResult {
        run: run_index,
        seed: run_seed,
        class,
        trigger: plan.trigger,
        injected,
        outcome,
        detected_by,
        checks,
        violations: violations.len() as u64,
        first_violation: violations.into_iter().next(),
    }
}

fn record(rep: &crate::oracle::InvariantReport, out: &mut Vec<String>) {
    out.extend(rep.violations.iter().map(ToString::to_string));
}

fn denials(c: &TraceCounters) -> u64 {
    c.pmp_denials + c.ptw_origin_rejections + c.token_rejections
}

/// The seeded syscall workload: one worker process per hart, operations
/// drawn uniformly and rotated across the harts. Every kernel error is
/// tolerated (the workload probes, it does not assert).
struct Workload {
    /// Per-hart mapped-page lists (VAs owned by that hart's worker).
    mapped: Vec<Vec<VirtAddr>>,
}

impl Workload {
    /// Forks one worker per hart and switches each hart to its worker
    /// (the same pattern the SMP benchmarks use).
    fn spawn(k: &mut Kernel) -> Self {
        let harts = k.harts.len();
        k.set_active_hart(0);
        let workers: Vec<Pid> = (0..harts).filter_map(|_| k.sys_fork().ok()).collect();
        for (h, &w) in workers.iter().enumerate() {
            k.set_active_hart(h);
            let _ = k.do_switch_to(w);
        }
        k.set_active_hart(0);
        Self {
            mapped: vec![Vec::new(); harts],
        }
    }

    /// One workload operation on a randomly chosen hart.
    fn step(&mut self, k: &mut Kernel, rng: &mut StdRng) {
        let h = (rng.random::<u64>() as usize) % k.harts.len();
        k.set_active_hart(h);
        match rng.random::<u64>() % 8 {
            0 => {
                // Process churn: fork, run, reap — the token/zone hot path.
                if let Ok(child) = k.sys_fork() {
                    let _ = k.do_switch_to(child);
                    let _ = k.sys_exit(0);
                    let _ = k.sys_wait();
                }
            }
            1 => {
                if let Ok(va) = k.sys_mmap(PAGE_SIZE) {
                    let _ = k.sys_touch(va, true);
                    self.mapped[h].push(va);
                }
            }
            2 => {
                if !self.mapped[h].is_empty() {
                    let idx = (rng.random::<u64>() as usize) % self.mapped[h].len();
                    let va = self.mapped[h].swap_remove(idx);
                    let _ = k.sys_munmap(va, PAGE_SIZE);
                }
            }
            3 => {
                if !self.mapped[h].is_empty() {
                    let idx = (rng.random::<u64>() as usize) % self.mapped[h].len();
                    let _ = k.sys_touch(self.mapped[h][idx], rng.random::<bool>());
                }
            }
            4 => {
                if let Some(p) = k.procs.get(k.current_pid()) {
                    let brk = p.brk;
                    let _ = k.sys_brk(brk + PAGE_SIZE);
                }
            }
            5 => {
                let _ = k.sys_null();
            }
            6 => {
                if let Ok((r, w)) = k.sys_pipe() {
                    let _ = k.sys_write(w, &[0xa5; 32]);
                    let _ = k.sys_read_discard(r, 32);
                    let _ = k.sys_close(r);
                    let _ = k.sys_close(w);
                }
            }
            _ => {
                let _ = k.sys_yield();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_is_deterministic_and_clean() {
        let cfg = CampaignConfig::quick(42, 18, 2);
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.count(RunClass::InvariantViolated), 0, "{}", a.summary());
        // Every class was exercised (18 runs over 9 classes).
        for &fc in &FaultClass::ALL {
            let total = a.count_class(fc, RunClass::DetectedAndContained)
                + a.count_class(fc, RunClass::Benign);
            assert_eq!(total, 2, "class {fc} ran twice");
        }
    }
}
