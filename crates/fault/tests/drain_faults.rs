//! Drain-machinery fault acceptance tests: the missed-drain bug class.
//!
//! A `DrainDrop` discards one queued remote invalidation before its
//! batched drain. When the victim page was cached by a remote hart, that
//! hart keeps translating through a mapping the security boundary
//! (munmap) already destroyed — the oracle's TLB staleness sweep must
//! classify this as an invariant violation. A `WatermarkSkip` merely
//! postpones an *early* (watermark-triggered) drain; the next security
//! boundary delivers everything, so the machine must end byte-identical
//! to an uninjected twin — benign by construction.

use ptstore_core::{AccessKind, PrivilegeMode, VirtAddr, MIB, PAGE_SIZE};
use ptstore_fault::{run_campaign, CampaignConfig, FaultClass, Invariants, RunClass, Violation};
use ptstore_kernel::{DrainFault, DrainPolicy, Kernel, KernelConfig};

fn boot(harts: usize, policy: DrainPolicy) -> Kernel {
    let cfg = KernelConfig::cfi_ptstore()
        .with_mem_size(128 * MIB)
        .with_initial_secure_size(8 * MIB)
        .with_harts(harts)
        .with_deferred_shootdowns(true)
        .with_drain_policy(policy);
    Kernel::boot(cfg).expect("kernel boots")
}

/// Warms `hart`'s D-TLB at `va` through init's address space, then puts
/// the hart's satp back — modelling a hart that ran the process earlier
/// and still holds its translations cached.
fn warm_remote_and_park(k: &mut Kernel, hart: usize, va: VirtAddr) {
    let parked = k.harts[hart].mmu.satp;
    k.harts[hart].mmu.satp = k.harts[0].mmu.satp;
    k.harts[hart]
        .mmu
        .translate_data(&mut k.bus, va, AccessKind::Read, PrivilegeMode::User)
        .expect("remote warm resolves");
    k.harts[hart].mmu.satp = parked;
}

/// Every TLB entry of every hart, as a sorted canonical listing.
fn tlb_state(k: &Kernel) -> Vec<String> {
    let mut v = Vec::new();
    for h in &k.harts {
        for e in h.mmu.itlb().entries() {
            v.push(format!("hart{} itlb {e:?}", h.id));
        }
        for e in h.mmu.dtlb().entries() {
            v.push(format!("hart{} dtlb {e:?}", h.id));
        }
    }
    v.sort();
    v
}

/// Grows init's heap by `pages` and write-touches each one.
fn grow_heap(k: &mut Kernel, pages: u64) -> VirtAddr {
    let heap_base = k.procs.get(1).expect("init").brk;
    k.sys_brk(heap_base + pages * PAGE_SIZE).expect("brk");
    for i in 0..pages {
        k.sys_touch(VirtAddr::new(heap_base + i * PAGE_SIZE), true)
            .expect("touch heap");
    }
    VirtAddr::new(heap_base)
}

/// A dropped invalidation whose page a remote hart had cached leaves that
/// hart translating through a destroyed mapping: the oracle must flag the
/// stale entry as a TLB-hygiene violation.
#[test]
fn drain_drop_across_security_boundary_violates() {
    let mut k = boot(2, DrainPolicy::Boundary);
    let heap = grow_heap(&mut k, 4);
    warm_remote_and_park(&mut k, 1, heap);
    assert!(Invariants::check(&k).ok(), "healthy before the fault");

    k.inject_drain_fault(DrainFault::DropQueuedNext { index: 0 });
    k.sys_munmap(heap, PAGE_SIZE).expect("munmap");
    assert!(!k.drain_fault_pending(), "the boundary drain consumed it");

    let rep = Invariants::check(&k);
    assert!(
        rep.violations
            .iter()
            .any(|v| matches!(v, Violation::TlbStaleTranslation { hart: 1, .. })),
        "expected a stale-translation violation on hart 1, got {:?}",
        rep.violations
    );
}

/// The same drop with no remote warming is absorbed: the lost remote
/// invalidation targeted a translation no remote hart held.
#[test]
fn drain_drop_without_remote_caching_is_benign() {
    let mut k = boot(2, DrainPolicy::Boundary);
    let heap = grow_heap(&mut k, 4);
    k.inject_drain_fault(DrainFault::DropQueuedNext { index: 0 });
    k.sys_munmap(heap, PAGE_SIZE).expect("munmap");
    assert!(!k.drain_fault_pending());
    assert!(Invariants::check(&k).ok());
}

/// A skipped watermark drain is made up for by the munmap's boundary
/// drain: the injected kernel ends byte-identical to an uninjected twin,
/// with one fewer early drain on the books.
#[test]
fn watermark_skip_is_benign_and_state_identical() {
    let policy = DrainPolicy::Watermark { depth: 2 };
    let mut faulted = boot(2, policy);
    let mut twin = boot(2, policy);
    let heap = grow_heap(&mut faulted, 6);
    warm_remote_and_park(&mut faulted, 1, heap);
    faulted.inject_drain_fault(DrainFault::SkipWatermarkNext);
    faulted.sys_munmap(heap, 6 * PAGE_SIZE).expect("munmap");
    let heap = grow_heap(&mut twin, 6);
    warm_remote_and_park(&mut twin, 1, heap);
    twin.sys_munmap(heap, 6 * PAGE_SIZE).expect("munmap");

    assert!(!faulted.drain_fault_pending(), "the watermark consumed it");
    assert_eq!(tlb_state(&faulted), tlb_state(&twin), "state diverged");
    assert!(Invariants::check(&faulted).ok());
    assert!(Invariants::check(&twin).ok());
    assert!(
        faulted.stats.watermark_drains < twin.stats.watermark_drains,
        "the skip must cost exactly the early drains it suppressed ({} !< {})",
        faulted.stats.watermark_drains,
        twin.stats.watermark_drains
    );
    assert_eq!(faulted.pending_deferred_flushes(), 0);
    assert_eq!(twin.pending_deferred_flushes(), 0);
}

/// Under the default campaign workload — where no remote hart ever warms
/// another hart's pages — both drain-fault classes land but stay clean:
/// drops lose invalidations nobody cached, skips are repaid at the next
/// boundary.
#[test]
fn drain_fault_campaigns_stay_clean_on_default_workload() {
    for class in [FaultClass::DrainDrop, FaultClass::WatermarkSkip] {
        let mut cfg = CampaignConfig::quick(0xD7A1 ^ class as u64, 6, 2);
        cfg.classes = vec![class];
        let report = run_campaign(&cfg);
        assert_eq!(
            report.count(RunClass::InvariantViolated),
            0,
            "class {class} violated on the default workload:\n{}",
            report.summary()
        );
        assert!(
            report.runs.iter().any(|r| r.injected),
            "class {class} never found an injection site:\n{}",
            report.summary()
        );
    }
}
