//! Property tests for the invariant oracle and the campaign driver.
//!
//! Two properties carry the whole subsystem's credibility:
//!
//! 1. **No false positives** — on an unmodified kernel running arbitrary
//!    seeded workloads at 1, 2, and 4 harts, the oracle is silent and the
//!    mechanism raises no denials. If this fails, campaign verdicts mean
//!    nothing.
//! 2. **Determinism** — the same campaign seed produces the same report,
//!    byte for byte. Every `reproduce fuzz` line in EXPERIMENTS.md relies
//!    on this.

use proptest::prelude::*;
use ptstore_core::{VirtAddr, MIB, PAGE_SIZE};
use ptstore_fault::{run_campaign, CampaignConfig, Invariants, RunClass};
use ptstore_kernel::{Kernel, KernelConfig};
use ptstore_trace::TraceSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn boot(harts: usize) -> Kernel {
    let cfg = KernelConfig::cfi_ptstore()
        .with_mem_size(128 * MIB)
        .with_initial_secure_size(8 * MIB)
        .with_harts(harts);
    Kernel::boot(cfg).expect("kernel boots")
}

/// Seeded clean workload: one worker per hart, then a mix of process
/// churn, mappings, touches, and pipe traffic rotated across harts.
fn drive(k: &mut Kernel, seed: u64, ops: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let harts = k.harts.len();
    k.set_active_hart(0);
    let workers: Vec<_> = (0..harts).filter_map(|_| k.sys_fork().ok()).collect();
    for (h, &w) in workers.iter().enumerate() {
        k.set_active_hart(h);
        let _ = k.do_switch_to(w);
    }
    let mut mapped: Vec<Vec<VirtAddr>> = vec![Vec::new(); harts];
    for _ in 0..ops {
        let h = (rng.random::<u64>() as usize) % harts;
        k.set_active_hart(h);
        match rng.random::<u64>() % 6 {
            0 => {
                if let Ok(child) = k.sys_fork() {
                    let _ = k.do_switch_to(child);
                    let _ = k.sys_exit(0);
                    let _ = k.sys_wait();
                }
            }
            1 => {
                if let Ok(va) = k.sys_mmap(PAGE_SIZE) {
                    let _ = k.sys_touch(va, true);
                    mapped[h].push(va);
                }
            }
            2 => {
                if let Some(va) = mapped[h].pop() {
                    let _ = k.sys_munmap(va, PAGE_SIZE);
                }
            }
            3 => {
                if let Some(&va) = mapped[h].first() {
                    let _ = k.sys_touch(va, rng.random::<bool>());
                }
            }
            4 => {
                if let Ok((r, w)) = k.sys_pipe() {
                    let _ = k.sys_write(w, &[0x5a; 16]);
                    let _ = k.sys_read_discard(r, 16);
                    let _ = k.sys_close(r);
                    let _ = k.sys_close(w);
                }
            }
            _ => {
                let _ = k.sys_yield();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The oracle never cries wolf: clean workloads at 1, 2, and 4 harts
    /// keep every invariant, with the oracle run both mid-flight and at
    /// the end, and the mechanism raises zero denials.
    #[test]
    fn oracle_silent_on_clean_workloads(seed in 0u64..u64::MAX, pick in 0usize..3) {
        let harts = [1usize, 2, 4][pick];
        let mut k = boot(harts);
        let sink = TraceSink::new();
        k.set_trace_sink(Some(sink.clone()));

        drive(&mut k, seed, 24);
        let mid = Invariants::check(&k);
        prop_assert!(mid.ok(), "mid-run violations at {harts} harts: {:?}", mid.violations);
        prop_assert!(mid.checks > 0);

        drive(&mut k, seed.wrapping_add(1), 24);
        let end = Invariants::check(&k);
        prop_assert!(end.ok(), "end-run violations at {harts} harts: {:?}", end.violations);

        let c = sink.counters();
        prop_assert_eq!(c.pmp_denials, 0);
        prop_assert_eq!(c.ptw_origin_rejections, 0);
        prop_assert_eq!(c.token_rejections, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Same seed, same campaign — and the full mechanism never lets a
    /// fault through to an invariant violation.
    #[test]
    fn campaigns_are_deterministic_and_contained(seed in 0u64..u64::MAX) {
        let cfg = CampaignConfig::quick(seed, 7, 2);
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        prop_assert_eq!(a.summary(), b.summary());
        prop_assert_eq!(a.count(RunClass::InvariantViolated), 0, "{}", a.summary());
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            prop_assert_eq!(ra.seed, rb.seed);
            prop_assert_eq!(ra.outcome, rb.outcome);
            prop_assert_eq!(ra.detected_by, rb.detected_by);
            prop_assert_eq!(ra.violations, rb.violations);
        }
    }
}
