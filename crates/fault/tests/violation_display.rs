//! Exhaustive coverage of the oracle's violation vocabulary.
//!
//! Every [`Violation`] variant is a distinct promise the invariant oracle
//! makes about the machine; each must render an explanation a campaign
//! report can print verbatim. Constructing all of them here also keeps the
//! vocabulary honest: a variant nothing can name in a test is a variant no
//! campaign has ever demanded.

use ptstore_core::{PhysPageNum, TokenError};
use ptstore_fault::Violation;

fn all_violations() -> Vec<Violation> {
    let ppn = PhysPageNum::new(0x1234);
    let parent = PhysPageNum::new(0x1200);
    vec![
        Violation::PtPageOutsideRegion { ppn },
        Violation::ReachableUnknownPtPage { ppn, parent },
        Violation::UnreadablePtPage { ppn },
        Violation::UserLeafIntoRegion { ppn },
        Violation::SatpRootMismatch { hart: 1, pid: 2 },
        Violation::TokenBindingBroken {
            pid: 3,
            err: TokenError::Cleared,
        },
        Violation::PmpRegionMismatch,
        Violation::PmpEnforcementMismatch,
        Violation::SatpSBitMismatch { hart: 0 },
        Violation::TlbMapsPtPage { hart: 1, ppn },
        Violation::HandleBindingBroken { pid: 4 },
    ]
}

/// Each variant displays non-empty and distinctly from every other.
#[test]
fn every_violation_variant_displays_distinctly() {
    let mut seen = std::collections::BTreeSet::new();
    for v in all_violations() {
        let s = v.to_string();
        assert!(!s.is_empty(), "{v:?} renders empty");
        assert!(seen.insert(s.clone()), "duplicate display {s:?}");
    }
}

/// Context fields (pages, harts, pids, token errors) show up in the
/// rendered message so a failing campaign run is debuggable from its log.
#[test]
fn violation_displays_carry_context() {
    let ppn = PhysPageNum::new(0xabcd);
    assert!(Violation::PtPageOutsideRegion { ppn }
        .to_string()
        .contains("0xabcd"));
    assert!(Violation::SatpRootMismatch { hart: 7, pid: 9 }
        .to_string()
        .contains('7'));
    let broken = Violation::TokenBindingBroken {
        pid: 9,
        err: TokenError::UserPointerMismatch,
    };
    assert!(broken
        .to_string()
        .contains(&TokenError::UserPointerMismatch.to_string()));
    assert!(Violation::HandleBindingBroken { pid: 41 }
        .to_string()
        .contains("41"));
}
