//! Per-fault-class acceptance tests: the paper's §V case analysis, executed.
//!
//! On the **full mechanism**, every fault class is either refused by its
//! named layer (PMP S-bit, PTW origin check, token validation, SBI
//! firmware, PTStore-zone allocator) or provably benign — the campaign
//! never classifies a run as *invariant-violated*.
//!
//! With a **single ablation switch** flipped, the matching class lands and
//! the invariant oracle catches the corruption the mechanism would have
//! prevented — the violated count goes non-zero. This is the executable
//! version of the claim "each check is load-bearing".

use ptstore_fault::{run_campaign, CampaignConfig, DetectedBy, FaultClass, RunClass};
use ptstore_kernel::KernelConfig;
use ptstore_trace::RejectingLayer;

/// Runs a campaign restricted to one fault class.
fn campaign(
    class: FaultClass,
    kernel: Option<KernelConfig>,
    runs: u64,
) -> ptstore_fault::CampaignReport {
    let mut cfg = CampaignConfig::quick(0xF417 ^ class as u64, runs, 2);
    cfg.classes = vec![class];
    cfg.kernel = kernel;
    run_campaign(&cfg)
}

/// The layer expected to refuse each class on the full mechanism, or
/// `None` when the class is absorbed (benign / contained elsewhere).
fn expected_layer(class: FaultClass) -> Option<DetectedBy> {
    match class {
        FaultClass::PteBitFlip => Some(DetectedBy::Mechanism(RejectingLayer::PmpSBit)),
        FaultClass::PmpCsrCorrupt => Some(DetectedBy::Firmware),
        FaultClass::SatpCorrupt => Some(DetectedBy::Mechanism(RejectingLayer::PtwOriginCheck)),
        FaultClass::TokenForge => Some(DetectedBy::Mechanism(RejectingLayer::TokenValidation)),
        FaultClass::ZoneExhaust => Some(DetectedBy::Allocator),
        FaultClass::IpiDrop | FaultClass::IpiReorder => None,
        // Drain faults on the default campaign workload are absorbed: the
        // dropped/delayed remote invalidations target pages no remote hart
        // ever cached (each worker touches only its own hart's pages), so
        // nothing stale survives. The dedicated drain_faults tests build
        // the cross-hart warming that makes a drop a real violation.
        FaultClass::DrainDrop | FaultClass::WatermarkSkip => None,
    }
}

#[test]
fn full_mechanism_contains_every_class() {
    for &class in &FaultClass::ALL {
        let report = campaign(class, None, 3);
        assert_eq!(
            report.count(RunClass::InvariantViolated),
            0,
            "class {class} violated invariants on the full mechanism:\n{}",
            report.summary()
        );
        for run in &report.runs {
            if !run.injected {
                continue;
            }
            match expected_layer(class) {
                Some(layer) => assert_eq!(
                    run.detected_by,
                    Some(layer),
                    "class {class} run {} expected {layer}, got {:?}",
                    run.run,
                    run.detected_by
                ),
                None => assert_eq!(
                    run.outcome,
                    RunClass::Benign,
                    "class {class} run {} expected benign, got {}",
                    run.run,
                    run.outcome
                ),
            }
        }
    }
}

/// Base kernel config matching the campaign geometry, for ablations.
fn ablation_base() -> KernelConfig {
    let c = CampaignConfig::quick(0, 0, 2);
    c.kernel_config()
}

#[test]
fn disabling_pmp_s_bit_check_lets_pte_flips_violate() {
    let mut kcfg = ablation_base();
    kcfg.pmp_s_bit_check = false;
    let report = campaign(FaultClass::PteBitFlip, Some(kcfg), 3);
    assert!(
        report.count(RunClass::InvariantViolated) > 0,
        "pte-bit-flip should corrupt translation state without the S-bit check:\n{}",
        report.summary()
    );
}

#[test]
fn disabling_ptw_origin_check_lets_satp_corruption_violate() {
    let mut kcfg = ablation_base();
    kcfg.ptw_origin_check = false;
    let report = campaign(FaultClass::SatpCorrupt, Some(kcfg), 3);
    assert!(
        report.count(RunClass::InvariantViolated) > 0,
        "satp-corrupt should go live without the PTW origin check:\n{}",
        report.summary()
    );
}

#[test]
fn disabling_token_checks_lets_forged_tokens_violate() {
    let mut kcfg = ablation_base();
    kcfg.token_checks = false;
    let report = campaign(FaultClass::TokenForge, Some(kcfg), 3);
    assert!(
        report.count(RunClass::InvariantViolated) > 0,
        "token-forge should redirect satp without token validation:\n{}",
        report.summary()
    );
}

#[test]
fn ablations_leave_other_classes_contained() {
    // An ablated kernel is still safe against the classes *other* layers
    // cover — switches are independent, not load-bearing for everything.
    let mut kcfg = ablation_base();
    kcfg.token_checks = false;
    let report = campaign(FaultClass::PteBitFlip, Some(kcfg), 2);
    assert_eq!(
        report.count(RunClass::InvariantViolated),
        0,
        "pte-bit-flip is covered by the S-bit check, not tokens:\n{}",
        report.summary()
    );
}
