//! Pinned ablation counterexamples from the bounded model checker.
//!
//! `reproduce modelcheck --ablate <check>` discovers, shrinks, and prints a
//! minimal violating trace for each single-check ablation. These tests pin
//! one such trace per defense and re-execute it through [`replay_trace`] —
//! the same primitive the shrinker validates candidates with — so a
//! regression in any layer's coverage (the op semantics, the oracle, or the
//! replay determinism contract) turns a printed artifact from the paper's
//! §V argument into a failing test.
//!
//! With **no** ablation the very same traces must be harmless: that
//! direction is asserted last, and is why the counterexamples demonstrate
//! the removed check was load-bearing rather than the trace being globally
//! destructive.

use ptstore_core::MIB;
use ptstore_fault::{replay_trace, ModelOp, Violation};
use ptstore_kernel::KernelConfig;

/// The model checker's machine geometry (`McConfig::kernel_config`).
fn model_cfg() -> KernelConfig {
    KernelConfig::cfi_ptstore()
        .with_mem_size(64 * MIB)
        .with_initial_secure_size(4 * MIB)
        .with_harts(2)
}

#[test]
fn pinned_pmp_ablation_counterexample_replays() {
    // Discovered by: reproduce modelcheck --ablate pmp_s_bit_check
    let trace = [ModelOp::PteFlip { hart: 0, bit: 35 }];
    let mut cfg = model_cfg();
    cfg.pmp_s_bit_check = false;
    let rep = replay_trace(&cfg, &trace);
    assert!(
        rep.violations
            .iter()
            .any(|v| matches!(v, Violation::PtPageOutsideRegion { .. })),
        "landed PTE flip must break containment: {:?}",
        rep.violations
    );
}

#[test]
fn pinned_ptw_origin_ablation_counterexample_replays() {
    // Discovered by: reproduce modelcheck --ablate ptw_origin_check
    let trace = [ModelOp::SatpCorrupt { hart: 0 }];
    let mut cfg = model_cfg();
    cfg.ptw_origin_check = false;
    let rep = replay_trace(&cfg, &trace);
    assert!(
        rep.violations
            .iter()
            .any(|v| matches!(v, Violation::SatpRootMismatch { .. })),
        "unchecked walk origin must leave a corrupt satp behind: {:?}",
        rep.violations
    );
}

#[test]
fn pinned_token_ablation_counterexample_replays() {
    // Discovered by: reproduce modelcheck --ablate token_checks
    let trace = [ModelOp::TokenForge { hart: 0 }];
    let mut cfg = model_cfg();
    cfg.token_checks = false;
    let rep = replay_trace(&cfg, &trace);
    assert!(
        rep.violations
            .iter()
            .any(|v| matches!(v, Violation::SatpRootMismatch { .. })),
        "forged PCB pointer must reach satp without token checks: {:?}",
        rep.violations
    );
}

#[test]
fn pinned_counterexamples_are_harmless_when_defended() {
    let cfg = model_cfg();
    for trace in [
        [ModelOp::PteFlip { hart: 0, bit: 35 }],
        [ModelOp::SatpCorrupt { hart: 0 }],
        [ModelOp::TokenForge { hart: 0 }],
    ] {
        let rep = replay_trace(&cfg, &trace);
        assert!(
            rep.ok(),
            "{:?} must be denied with all defenses on: {:?}",
            trace,
            rep.violations
        );
    }
}
