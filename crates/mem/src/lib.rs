//! # ptstore-mem
//!
//! The physical memory substrate of the PTStore machine model.
//!
//! * [`frame::Frame`] — one 4 KiB physical frame with an adaptive backing
//!   (zero / sparse word map / dense bytes) so that simulating a 4 GiB DDR3
//!   SO-DIMM (paper Table II) with tens of thousands of processes stays cheap.
//! * [`phys::PhysMem`] — the frame store with byte/word accessors.
//! * [`bus::Bus`] — the memory bus: every access carries a
//!   [`Channel`](ptstore_core::Channel) and is checked by the
//!   [`PmpUnit`](ptstore_core::PmpUnit) *before* it reaches memory, exactly as
//!   the modified BOOM core denies illegal accesses with an access fault
//!   (paper §IV-A1).
//! * [`stats::AccessStats`] — per-channel access counters used by the cycle
//!   model and by the evaluation harness.

#![deny(missing_docs)]

pub mod bus;
pub mod frame;
pub mod phys;
pub mod stats;

pub use bus::{Bus, BusData};
pub use frame::Frame;
pub use phys::PhysMem;
pub use ptstore_trace::Snapshot;
pub use stats::AccessStats;
