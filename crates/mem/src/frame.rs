//! One 4 KiB physical frame with adaptive backing.
//!
//! Page tables are sparse: a typical page-table page holds a handful of live
//! PTEs out of 512 slots. Backing every touched frame with 4 KiB would make
//! the 30 000-process fork-stress experiment (paper §V-D1) cost gigabytes of
//! host memory, so a frame starts as all-zero, is promoted to a sparse
//! 8-byte-word map on first write, and only becomes a dense byte array when
//! it accumulates enough distinct words (or sees sub-word writes that don't
//! fit the word map cleanly).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use ptstore_core::{Fnv1a, PAGE_SIZE};

/// Number of distinct 8-byte words after which a sparse frame is promoted to
/// dense backing.
const DENSE_PROMOTION_WORDS: usize = 96;

/// Multiply-shift hasher for the 9-bit word indices. The default SipHash
/// is DoS-resistant but costs more than the modeled memory access it keys;
/// word indices are attacker-independent model state, so a single odd
/// multiply (Fibonacci hashing) is enough to spread the low bits.
#[derive(Debug, Clone, Copy, Default)]
pub struct WordIndexHasher(u64);

impl Hasher for WordIndexHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.0 = u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// The word map: a `HashMap` whose hash is one multiply.
pub type WordMap = HashMap<u16, u64, BuildHasherDefault<WordIndexHasher>>;

/// A 4 KiB physical frame.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Frame {
    /// Never written: reads as zero.
    #[default]
    Zero,
    /// Sparse backing: 8-byte words keyed by word index within the page.
    /// Absent words read as zero.
    Words(WordMap),
    /// Dense backing: the full page.
    Dense(Box<[u8; PAGE_SIZE as usize]>),
}

impl Frame {
    /// A fresh all-zero frame.
    pub fn new() -> Self {
        Frame::Zero
    }

    /// Reads an aligned 8-byte word. `word_index` is the offset divided by 8.
    ///
    /// # Panics
    /// Panics if `word_index >= 512`.
    #[inline]
    pub fn read_word(&self, word_index: u16) -> u64 {
        assert!((word_index as u64) < PAGE_SIZE / 8);
        match self {
            Frame::Zero => 0,
            Frame::Words(map) => map.get(&word_index).copied().unwrap_or(0),
            Frame::Dense(bytes) => {
                let off = word_index as usize * 8;
                u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"))
            }
        }
    }

    /// Writes an aligned 8-byte word, promoting the backing as needed.
    ///
    /// # Panics
    /// Panics if `word_index >= 512`.
    #[inline]
    pub fn write_word(&mut self, word_index: u16, value: u64) {
        assert!((word_index as u64) < PAGE_SIZE / 8);
        match self {
            Frame::Zero => {
                if value != 0 {
                    let mut map = WordMap::default();
                    map.insert(word_index, value);
                    *self = Frame::Words(map);
                }
            }
            Frame::Words(map) => {
                if value == 0 {
                    map.remove(&word_index);
                } else {
                    map.insert(word_index, value);
                    if map.len() > DENSE_PROMOTION_WORDS {
                        self.promote_to_dense();
                    }
                }
            }
            Frame::Dense(bytes) => {
                let off = word_index as usize * 8;
                bytes[off..off + 8].copy_from_slice(&value.to_le_bytes());
            }
        }
    }

    /// Reads a single byte at `offset`.
    ///
    /// # Panics
    /// Panics if `offset >= PAGE_SIZE`.
    #[inline]
    pub fn read_byte(&self, offset: u16) -> u8 {
        assert!((offset as u64) < PAGE_SIZE);
        match self {
            Frame::Zero => 0,
            Frame::Words(_) => {
                let word = self.read_word(offset / 8);
                word.to_le_bytes()[(offset % 8) as usize]
            }
            Frame::Dense(bytes) => bytes[offset as usize],
        }
    }

    /// Writes a single byte at `offset`, promoting sparse backing through the
    /// word map (read-modify-write of the containing word).
    ///
    /// # Panics
    /// Panics if `offset >= PAGE_SIZE`.
    #[inline]
    pub fn write_byte(&mut self, offset: u16, value: u8) {
        assert!((offset as u64) < PAGE_SIZE);
        match self {
            Frame::Dense(bytes) => bytes[offset as usize] = value,
            _ => {
                let wi = offset / 8;
                let mut word = self.read_word(wi).to_le_bytes();
                word[(offset % 8) as usize] = value;
                self.write_word(wi, u64::from_le_bytes(word));
            }
        }
    }

    /// True when every byte of the frame is zero. Used by the kernel's
    /// zero-check defense against allocator-metadata attacks (paper §V-E3).
    #[inline]
    pub fn is_zero(&self) -> bool {
        match self {
            Frame::Zero => true,
            Frame::Words(map) => map.values().all(|&v| v == 0),
            Frame::Dense(bytes) => bytes.iter().all(|&b| b == 0),
        }
    }

    /// Resets the frame to all-zero, releasing its backing.
    #[inline]
    pub fn clear(&mut self) {
        *self = Frame::Zero;
    }

    /// FNV-1a digest of the frame's contents: the `(index, value)` pairs of
    /// every **non-zero** word, folded in ascending index order — therefore
    /// identical for equal contents regardless of which backing
    /// representation (zero / sparse / dense) holds them, and proportional
    /// to the live words rather than the page size for sparse frames. The
    /// model checker's canonical state hash folds every reachable
    /// page-table page through this instead of 512 bounds-checked bus
    /// reads.
    pub fn content_digest(&self) -> u64 {
        let mut f = Fnv1a::new();
        match self {
            Frame::Zero => {}
            Frame::Words(map) => {
                let mut words: Vec<(u16, u64)> = map
                    .iter()
                    .filter(|&(_, &v)| v != 0)
                    .map(|(&i, &v)| (i, v))
                    .collect();
                words.sort_unstable();
                for (i, v) in words {
                    f.write_u64(u64::from(i));
                    f.write_u64(v);
                }
            }
            Frame::Dense(bytes) => {
                for (i, chunk) in bytes.chunks_exact(8).enumerate() {
                    let v = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                    if v != 0 {
                        f.write_u64(i as u64);
                        f.write_u64(v);
                    }
                }
            }
        }
        f.finish()
    }

    /// Approximate host-memory footprint of the backing, for diagnostics.
    pub fn backing_bytes(&self) -> usize {
        match self {
            Frame::Zero => 0,
            Frame::Words(map) => map.len() * 16,
            Frame::Dense(_) => PAGE_SIZE as usize,
        }
    }

    fn promote_to_dense(&mut self) {
        if let Frame::Words(map) = self {
            let mut bytes = Box::new([0u8; PAGE_SIZE as usize]);
            for (&wi, &v) in map.iter() {
                let off = wi as usize * 8;
                bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
            *self = Frame::Dense(bytes);
        }
    }
}

/// The digest of an all-zero page (the empty fold — the FNV offset basis):
/// untouched frames are the common case for sparse physical memory.
pub fn zero_page_digest() -> u64 {
    Fnv1a::new().finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_frame_reads_zero() {
        let f = Frame::new();
        assert_eq!(f.read_word(0), 0);
        assert_eq!(f.read_word(511), 0);
        assert_eq!(f.read_byte(4095), 0);
        assert!(f.is_zero());
        assert_eq!(f.backing_bytes(), 0);
    }

    #[test]
    fn word_write_read_round_trip() {
        let mut f = Frame::new();
        f.write_word(3, 0xdead_beef_cafe_f00d);
        assert_eq!(f.read_word(3), 0xdead_beef_cafe_f00d);
        assert_eq!(f.read_word(2), 0);
        assert!(!f.is_zero());
        assert!(matches!(f, Frame::Words(_)));
    }

    #[test]
    fn writing_zero_to_zero_frame_stays_zero() {
        let mut f = Frame::new();
        f.write_word(0, 0);
        assert!(matches!(f, Frame::Zero));
    }

    #[test]
    fn zeroing_last_word_makes_frame_zero_again() {
        let mut f = Frame::new();
        f.write_word(7, 42);
        f.write_word(7, 0);
        assert!(f.is_zero());
    }

    #[test]
    fn byte_access_within_words() {
        let mut f = Frame::new();
        f.write_byte(10, 0xAB);
        assert_eq!(f.read_byte(10), 0xAB);
        // Byte 10 lives in word 1 at lane 2.
        assert_eq!(f.read_word(1), 0xAB_u64 << 16);
        f.write_byte(10, 0);
        assert!(f.is_zero());
    }

    #[test]
    fn promotion_to_dense_preserves_content() {
        let mut f = Frame::new();
        for i in 0..(DENSE_PROMOTION_WORDS as u16 + 8) {
            f.write_word(i, i as u64 + 1);
        }
        assert!(matches!(f, Frame::Dense(_)));
        for i in 0..(DENSE_PROMOTION_WORDS as u16 + 8) {
            assert_eq!(f.read_word(i), i as u64 + 1);
        }
        assert_eq!(f.read_word(500), 0);
    }

    #[test]
    fn dense_byte_ops() {
        let mut f = Frame::new();
        for i in 0..(DENSE_PROMOTION_WORDS as u16 + 8) {
            f.write_word(i, u64::MAX);
        }
        assert!(matches!(f, Frame::Dense(_)));
        f.write_byte(4095, 0x7f);
        assert_eq!(f.read_byte(4095), 0x7f);
        assert!(!f.is_zero());
        f.clear();
        assert!(f.is_zero());
        assert!(matches!(f, Frame::Zero));
    }

    #[test]
    #[should_panic]
    fn out_of_range_word_panics() {
        Frame::new().read_word(512);
    }

    #[test]
    fn content_digest_is_representation_independent() {
        // Zero vs never-written sparse vs zero-filled dense: same digest.
        assert_eq!(Frame::Zero.content_digest(), zero_page_digest());
        let mut sparse = Frame::new();
        sparse.write_word(9, 1);
        sparse.write_word(9, 0);
        assert_eq!(sparse.content_digest(), zero_page_digest());

        // Sparse vs dense with identical contents: same digest.
        let mut a = Frame::new();
        a.write_word(3, 0xdead_beef);
        let mut b = Frame::new();
        for i in 0..(DENSE_PROMOTION_WORDS as u16 + 8) {
            b.write_word(i, 7);
        }
        assert!(matches!(b, Frame::Dense(_)));
        for i in 0..(DENSE_PROMOTION_WORDS as u16 + 8) {
            b.write_word(i, 0);
        }
        b.write_word(3, 0xdead_beef);
        assert!(matches!(b, Frame::Dense(_)));
        assert_eq!(a.content_digest(), b.content_digest());

        // And it matches the definitional fold over non-zero words.
        let mut f = Fnv1a::new();
        for i in 0..512u16 {
            let v = a.read_word(i);
            if v != 0 {
                f.write_u64(u64::from(i));
                f.write_u64(v);
            }
        }
        assert_eq!(a.content_digest(), f.finish());
    }
}
