//! Per-channel access counters gathered by the bus.

use core::fmt;

use ptstore_core::{AccessKind, Channel};
use ptstore_trace::Snapshot;
use serde::{Deserialize, Serialize};

/// Counters for every (channel, kind) combination plus faults, maintained by
/// [`Bus`](crate::bus::Bus). The cycle model and the evaluation harness read
/// these to attribute time and to verify experiments actually exercised the
/// paths they claim (e.g. that the PTStore kernel really issues `sd.pt`
/// stores for every page-table write).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessStats {
    /// Regular-channel reads.
    pub regular_reads: u64,
    /// Regular-channel writes.
    pub regular_writes: u64,
    /// Instruction fetches.
    pub fetches: u64,
    /// `ld.pt` reads.
    pub secure_reads: u64,
    /// `sd.pt` writes.
    pub secure_writes: u64,
    /// Page-table-walker fetches.
    pub ptw_reads: u64,
    /// Walker A/D-bit updates.
    pub ptw_writes: u64,
    /// Accesses denied by the PMP/PTStore checks.
    pub faults: u64,
}

impl AccessStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a successful access.
    pub fn record(&mut self, channel: Channel, kind: AccessKind) {
        match (channel, kind) {
            (Channel::Regular, AccessKind::Read) => self.regular_reads += 1,
            (Channel::Regular, AccessKind::Write) => self.regular_writes += 1,
            (Channel::Regular, AccessKind::Execute) => self.fetches += 1,
            (Channel::SecurePt, AccessKind::Read) => self.secure_reads += 1,
            (Channel::SecurePt, AccessKind::Write) => self.secure_writes += 1,
            (Channel::SecurePt, AccessKind::Execute) => self.fetches += 1,
            (Channel::Ptw, AccessKind::Read) => self.ptw_reads += 1,
            (Channel::Ptw, AccessKind::Write) => self.ptw_writes += 1,
            (Channel::Ptw, AccessKind::Execute) => self.ptw_reads += 1,
        }
    }

    /// Records a denied access.
    pub fn record_fault(&mut self) {
        self.faults += 1;
    }

    /// Total successful accesses.
    pub fn total(&self) -> u64 {
        self.regular_reads
            + self.regular_writes
            + self.fetches
            + self.secure_reads
            + self.secure_writes
            + self.ptw_reads
            + self.ptw_writes
    }

    /// Total accesses through the dedicated `ld.pt`/`sd.pt` channel.
    pub fn secure_total(&self) -> u64 {
        self.secure_reads + self.secure_writes
    }

    /// Difference against an earlier snapshot (for scoped measurement).
    #[deprecated(note = "use `Snapshot::delta`")]
    pub fn since(&self, earlier: &AccessStats) -> AccessStats {
        self.delta(earlier)
    }
}

impl Snapshot for AccessStats {
    fn delta(&self, earlier: &Self) -> Self {
        AccessStats {
            regular_reads: self.regular_reads - earlier.regular_reads,
            regular_writes: self.regular_writes - earlier.regular_writes,
            fetches: self.fetches - earlier.fetches,
            secure_reads: self.secure_reads - earlier.secure_reads,
            secure_writes: self.secure_writes - earlier.secure_writes,
            ptw_reads: self.ptw_reads - earlier.ptw_reads,
            ptw_writes: self.ptw_writes - earlier.ptw_writes,
            faults: self.faults - earlier.faults,
        }
    }
}

impl fmt::Display for AccessStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "r/w/f={}/{}/{} ld.pt/sd.pt={}/{} ptw={}/{} faults={}",
            self.regular_reads,
            self.regular_writes,
            self.fetches,
            self.secure_reads,
            self.secure_writes,
            self.ptw_reads,
            self.ptw_writes,
            self.faults
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_to_right_counter() {
        let mut s = AccessStats::new();
        s.record(Channel::Regular, AccessKind::Read);
        s.record(Channel::Regular, AccessKind::Write);
        s.record(Channel::Regular, AccessKind::Execute);
        s.record(Channel::SecurePt, AccessKind::Read);
        s.record(Channel::SecurePt, AccessKind::Write);
        s.record(Channel::Ptw, AccessKind::Read);
        s.record(Channel::Ptw, AccessKind::Write);
        assert_eq!(s.regular_reads, 1);
        assert_eq!(s.regular_writes, 1);
        assert_eq!(s.fetches, 1);
        assert_eq!(s.secure_reads, 1);
        assert_eq!(s.secure_writes, 1);
        assert_eq!(s.ptw_reads, 1);
        assert_eq!(s.ptw_writes, 1);
        assert_eq!(s.total(), 7);
        assert_eq!(s.secure_total(), 2);
    }

    #[test]
    fn since_subtracts() {
        let mut s = AccessStats::new();
        s.record(Channel::Regular, AccessKind::Read);
        let snap = s.snapshot();
        s.record(Channel::Regular, AccessKind::Read);
        s.record_fault();
        let d = s.delta(&snap);
        assert_eq!(d.regular_reads, 1);
        assert_eq!(d.faults, 1);
    }

    #[test]
    fn display_nonempty() {
        assert!(!AccessStats::new().to_string().is_empty());
    }
}
