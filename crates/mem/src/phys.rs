//! The physical frame store.

use ptstore_core::{AccessError, PhysAddr, PhysPageNum, GIB, PAGE_SIZE};

use crate::frame::Frame;

/// Frames per second-level chunk. A chunk spans 2 MiB of physical memory,
/// so a 4 GiB machine needs a 2048-slot root table (16 KiB of pointers).
const CHUNK_FRAMES: u64 = 512;

/// Simulated physical memory: a bounded, sparse, two-level direct-indexed
/// table from physical page number to [`Frame`]. The root holds one slot per
/// 512-frame chunk; a chunk is allocated on the first write into its range,
/// so untouched regions cost nothing beyond the root table, and lookups are
/// two array indexings with no hashing. The prototype system carries a 4 GiB
/// DDR3 SO-DIMM (paper Table II).
#[derive(Debug, Clone, Default)]
pub struct PhysMem {
    chunks: Vec<Option<Box<[Frame]>>>,
    /// Number of frames currently holding non-[`Frame::Zero`] backing.
    touched: usize,
    size: u64,
}

impl PhysMem {
    /// Memory of `size` bytes starting at physical address zero.
    ///
    /// # Panics
    /// Panics unless `size` is a non-zero multiple of the page size.
    pub fn new(size: u64) -> Self {
        assert!(
            size > 0 && size.is_multiple_of(PAGE_SIZE),
            "size must be page-aligned"
        );
        let chunk_count = (size / PAGE_SIZE).div_ceil(CHUNK_FRAMES) as usize;
        Self {
            chunks: vec![None; chunk_count],
            touched: 0,
            size,
        }
    }

    /// The prototype configuration: 4 GiB.
    pub fn new_4gib() -> Self {
        Self::new(4 * GIB)
    }

    /// Total memory size in bytes.
    #[inline]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Total memory size in pages.
    #[inline]
    pub fn page_count(&self) -> u64 {
        self.size / PAGE_SIZE
    }

    /// Number of frames with live backing (diagnostics).
    pub fn touched_frames(&self) -> usize {
        self.touched
    }

    /// Approximate host memory used by frame backings (diagnostics).
    pub fn backing_bytes(&self) -> usize {
        self.chunks
            .iter()
            .flatten()
            .flat_map(|chunk| chunk.iter())
            .map(Frame::backing_bytes)
            .sum()
    }

    #[inline]
    fn check_range(&self, addr: PhysAddr, len: u64) -> Result<(), AccessError> {
        let end = addr
            .as_u64()
            .checked_add(len)
            .ok_or(AccessError::OutOfRange { addr })?;
        if end > self.size {
            return Err(AccessError::OutOfRange { addr });
        }
        Ok(())
    }

    /// The frame for `ppn`, if its chunk has been allocated. `ppn` must be
    /// in range (callers go through [`Self::check_range`] first).
    #[inline]
    fn frame(&self, ppn: u64) -> Option<&Frame> {
        self.chunks[(ppn / CHUNK_FRAMES) as usize]
            .as_deref()
            .map(|chunk| &chunk[(ppn % CHUNK_FRAMES) as usize])
    }

    /// Mutable access to the frame for `ppn`, allocating its chunk on
    /// demand. The `touched` counter is kept in sync with the frame's
    /// before/after zero-ness around the mutation.
    #[inline]
    fn with_frame_mut<R>(&mut self, ppn: u64, f: impl FnOnce(&mut Frame) -> R) -> R {
        let slot = &mut self.chunks[(ppn / CHUNK_FRAMES) as usize];
        let chunk =
            slot.get_or_insert_with(|| vec![Frame::Zero; CHUNK_FRAMES as usize].into_boxed_slice());
        let frame = &mut chunk[(ppn % CHUNK_FRAMES) as usize];
        let was_backed = !matches!(frame, Frame::Zero);
        let result = f(frame);
        let is_backed = !matches!(frame, Frame::Zero);
        match (was_backed, is_backed) {
            (false, true) => self.touched += 1,
            (true, false) => self.touched -= 1,
            _ => {}
        }
        result
    }

    /// Reads an aligned u64.
    ///
    /// # Errors
    /// [`AccessError::Misaligned`] or [`AccessError::OutOfRange`].
    #[inline]
    pub fn read_u64(&self, addr: PhysAddr) -> Result<u64, AccessError> {
        if !addr.is_aligned(8) {
            return Err(AccessError::Misaligned { addr, required: 8 });
        }
        self.check_range(addr, 8)?;
        let ppn = addr.as_u64() >> 12;
        let word = (addr.page_offset() / 8) as u16;
        Ok(self.frame(ppn).map(|f| f.read_word(word)).unwrap_or(0))
    }

    /// Writes an aligned u64.
    ///
    /// # Errors
    /// [`AccessError::Misaligned`] or [`AccessError::OutOfRange`].
    #[inline]
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) -> Result<(), AccessError> {
        if !addr.is_aligned(8) {
            return Err(AccessError::Misaligned { addr, required: 8 });
        }
        self.check_range(addr, 8)?;
        let ppn = addr.as_u64() >> 12;
        let word = (addr.page_offset() / 8) as u16;
        self.with_frame_mut(ppn, |f| f.write_word(word, value));
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`AccessError::OutOfRange`].
    #[inline]
    pub fn read_u8(&self, addr: PhysAddr) -> Result<u8, AccessError> {
        self.check_range(addr, 1)?;
        let ppn = addr.as_u64() >> 12;
        Ok(self
            .frame(ppn)
            .map(|f| f.read_byte(addr.page_offset() as u16))
            .unwrap_or(0))
    }

    /// Writes one byte.
    ///
    /// # Errors
    /// [`AccessError::OutOfRange`].
    #[inline]
    pub fn write_u8(&mut self, addr: PhysAddr, value: u8) -> Result<(), AccessError> {
        self.check_range(addr, 1)?;
        let ppn = addr.as_u64() >> 12;
        self.with_frame_mut(ppn, |f| f.write_byte(addr.page_offset() as u16, value));
        Ok(())
    }

    /// Reads an aligned u16 (compressed-instruction fetch parcel).
    ///
    /// # Errors
    /// [`AccessError::Misaligned`] or [`AccessError::OutOfRange`].
    #[inline]
    pub fn read_u16(&self, addr: PhysAddr) -> Result<u16, AccessError> {
        if !addr.is_aligned(2) {
            return Err(AccessError::Misaligned { addr, required: 2 });
        }
        self.check_range(addr, 2)?;
        let ppn = addr.as_u64() >> 12;
        let off = addr.page_offset() as u16;
        Ok(self
            .frame(ppn)
            .map(|f| {
                let lo = f.read_byte(off) as u16;
                let hi = f.read_byte(off + 1) as u16;
                lo | (hi << 8)
            })
            .unwrap_or(0))
    }

    /// Writes an aligned u16.
    ///
    /// # Errors
    /// [`AccessError::Misaligned`] or [`AccessError::OutOfRange`].
    #[inline]
    pub fn write_u16(&mut self, addr: PhysAddr, value: u16) -> Result<(), AccessError> {
        if !addr.is_aligned(2) {
            return Err(AccessError::Misaligned { addr, required: 2 });
        }
        self.check_range(addr, 2)?;
        let ppn = addr.as_u64() >> 12;
        let off = addr.page_offset() as u16;
        self.with_frame_mut(ppn, |f| {
            f.write_byte(off, value as u8);
            f.write_byte(off + 1, (value >> 8) as u8);
        });
        Ok(())
    }

    /// Reads an aligned u32 (instruction fetch granularity).
    ///
    /// # Errors
    /// [`AccessError::Misaligned`] or [`AccessError::OutOfRange`].
    #[inline]
    pub fn read_u32(&self, addr: PhysAddr) -> Result<u32, AccessError> {
        if !addr.is_aligned(4) {
            return Err(AccessError::Misaligned { addr, required: 4 });
        }
        self.check_range(addr, 4)?;
        let ppn = addr.as_u64() >> 12;
        let word_index = (addr.page_offset() / 8) as u16;
        let word = self
            .frame(ppn)
            .map(|f| f.read_word(word_index))
            .unwrap_or(0);
        Ok(if addr.page_offset() % 8 < 4 {
            word as u32
        } else {
            (word >> 32) as u32
        })
    }

    /// Writes an aligned u32.
    ///
    /// # Errors
    /// [`AccessError::Misaligned`] or [`AccessError::OutOfRange`].
    #[inline]
    pub fn write_u32(&mut self, addr: PhysAddr, value: u32) -> Result<(), AccessError> {
        if !addr.is_aligned(4) {
            return Err(AccessError::Misaligned { addr, required: 4 });
        }
        self.check_range(addr, 4)?;
        let ppn = addr.as_u64() >> 12;
        let word_index = (addr.page_offset() / 8) as u16;
        let low_half = addr.page_offset() % 8 < 4;
        self.with_frame_mut(ppn, |f| {
            let word = f.read_word(word_index);
            let new = if low_half {
                (word & 0xffff_ffff_0000_0000) | value as u64
            } else {
                (word & 0x0000_0000_ffff_ffff) | ((value as u64) << 32)
            };
            f.write_word(word_index, new);
        });
        Ok(())
    }

    /// Canonical FNV-1a content digest of page `ppn` (DRAM's-eye view),
    /// per [`Frame::content_digest`]: the non-zero `(index, word)` pairs in
    /// ascending index order, one frame lookup instead of 512
    /// bounds-checked reads. The model checker hashes every reachable
    /// page-table page per explored state through this.
    ///
    /// # Errors
    /// [`AccessError::OutOfRange`] when `ppn` is outside physical memory.
    #[inline]
    pub fn page_digest(&self, ppn: PhysPageNum) -> Result<u64, AccessError> {
        self.check_range(ppn.base_addr(), PAGE_SIZE)?;
        Ok(self
            .frame(ppn.as_u64())
            .map(Frame::content_digest)
            .unwrap_or_else(crate::frame::zero_page_digest))
    }

    /// True when the whole page is zero — the kernel's allocator-metadata
    /// defense checks this before using a page as a page table (paper §V-E3).
    #[inline]
    pub fn page_is_zero(&self, ppn: PhysPageNum) -> bool {
        self.chunks
            .get((ppn.as_u64() / CHUNK_FRAMES) as usize)
            .and_then(|slot| slot.as_deref())
            .map(|chunk| chunk[(ppn.as_u64() % CHUNK_FRAMES) as usize].is_zero())
            .unwrap_or(true)
    }

    /// Zeroes a whole page (releases its backing).
    pub fn zero_page(&mut self, ppn: PhysPageNum) {
        if let Some(chunk) = self
            .chunks
            .get_mut((ppn.as_u64() / CHUNK_FRAMES) as usize)
            .and_then(|slot| slot.as_deref_mut())
        {
            let frame = &mut chunk[(ppn.as_u64() % CHUNK_FRAMES) as usize];
            if !matches!(frame, Frame::Zero) {
                self.touched -= 1;
            }
            frame.clear();
        }
    }

    /// Copies a whole page (used by fork's eager page-table copy).
    ///
    /// # Errors
    /// [`AccessError::OutOfRange`] when either page is outside memory.
    pub fn copy_page(&mut self, src: PhysPageNum, dst: PhysPageNum) -> Result<(), AccessError> {
        self.check_range(src.base_addr(), PAGE_SIZE)?;
        self.check_range(dst.base_addr(), PAGE_SIZE)?;
        match self.frame(src.as_u64()).cloned() {
            Some(f) => {
                self.with_frame_mut(dst.as_u64(), |d| *d = f);
            }
            None => self.zero_page(dst),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip_and_default_zero() {
        let mut m = PhysMem::new(16 * PAGE_SIZE);
        assert_eq!(m.read_u64(PhysAddr::new(0x100)).unwrap(), 0);
        m.write_u64(PhysAddr::new(0x100), 77).unwrap();
        assert_eq!(m.read_u64(PhysAddr::new(0x100)).unwrap(), 77);
    }

    #[test]
    fn alignment_enforced() {
        let mut m = PhysMem::new(16 * PAGE_SIZE);
        assert!(matches!(
            m.read_u64(PhysAddr::new(0x101)),
            Err(AccessError::Misaligned { .. })
        ));
        assert!(matches!(
            m.write_u32(PhysAddr::new(0x102), 1),
            Err(AccessError::Misaligned { .. })
        ));
    }

    #[test]
    fn range_enforced() {
        let m = PhysMem::new(PAGE_SIZE);
        assert!(m.read_u64(PhysAddr::new(PAGE_SIZE - 8)).is_ok());
        assert!(matches!(
            m.read_u64(PhysAddr::new(PAGE_SIZE)),
            Err(AccessError::OutOfRange { .. })
        ));
        assert!(matches!(
            m.read_u8(PhysAddr::new(u64::MAX)),
            Err(AccessError::OutOfRange { .. })
        ));
    }

    #[test]
    fn u32_halves_of_a_word() {
        let mut m = PhysMem::new(PAGE_SIZE);
        m.write_u64(PhysAddr::new(0x8), 0x1111_2222_3333_4444)
            .unwrap();
        assert_eq!(m.read_u32(PhysAddr::new(0x8)).unwrap(), 0x3333_4444);
        assert_eq!(m.read_u32(PhysAddr::new(0xc)).unwrap(), 0x1111_2222);
        m.write_u32(PhysAddr::new(0xc), 0xdead_beef).unwrap();
        assert_eq!(
            m.read_u64(PhysAddr::new(0x8)).unwrap(),
            0xdead_beef_3333_4444
        );
    }

    #[test]
    fn zero_page_check_and_clear() {
        let mut m = PhysMem::new(16 * PAGE_SIZE);
        let ppn = PhysPageNum::new(2);
        assert!(m.page_is_zero(ppn));
        m.write_u64(ppn.base_addr() + 8, 5).unwrap();
        assert!(!m.page_is_zero(ppn));
        m.zero_page(ppn);
        assert!(m.page_is_zero(ppn));
        assert_eq!(m.read_u64(ppn.base_addr() + 8).unwrap(), 0);
    }

    #[test]
    fn copy_page_copies_and_clears() {
        let mut m = PhysMem::new(16 * PAGE_SIZE);
        let a = PhysPageNum::new(1);
        let b = PhysPageNum::new(2);
        m.write_u64(a.base_addr() + 16, 99).unwrap();
        m.copy_page(a, b).unwrap();
        assert_eq!(m.read_u64(b.base_addr() + 16).unwrap(), 99);
        // Copying a zero page over b clears it.
        m.copy_page(PhysPageNum::new(3), b).unwrap();
        assert!(m.page_is_zero(b));
    }

    #[test]
    fn sparse_backing_is_cheap() {
        let mut m = PhysMem::new(4 * GIB);
        for i in 0..1000u64 {
            m.write_u64(PhysAddr::new(i * PAGE_SIZE + 8), i + 1)
                .unwrap();
        }
        assert_eq!(m.touched_frames(), 1000);
        // 1000 single-word sparse frames are far below dense cost.
        assert!(m.backing_bytes() < 1000 * 64);
    }

    #[test]
    fn touched_counter_tracks_zeroing_and_cross_chunk_pages() {
        let mut m = PhysMem::new(4 * GIB);
        // Pages in two different chunks.
        let a = PhysPageNum::new(3);
        let b = PhysPageNum::new(CHUNK_FRAMES + 5);
        m.write_u64(a.base_addr(), 1).unwrap();
        m.write_u64(b.base_addr(), 2).unwrap();
        assert_eq!(m.touched_frames(), 2);
        m.copy_page(a, b).unwrap();
        assert_eq!(m.touched_frames(), 2);
        m.zero_page(a);
        assert_eq!(m.touched_frames(), 1);
        // Zeroing a never-touched page in an unallocated chunk is a no-op.
        m.zero_page(PhysPageNum::new(7 * CHUNK_FRAMES + 1));
        assert_eq!(m.touched_frames(), 1);
        m.copy_page(PhysPageNum::new(9), b).unwrap();
        assert_eq!(m.touched_frames(), 0);
    }

    #[test]
    fn last_page_of_memory_is_addressable() {
        let mut m = PhysMem::new(CHUNK_FRAMES * PAGE_SIZE + PAGE_SIZE);
        let last = PhysPageNum::new(CHUNK_FRAMES);
        m.write_u64(last.base_addr() + 8, 42).unwrap();
        assert_eq!(m.read_u64(last.base_addr() + 8).unwrap(), 42);
        assert!(!m.page_is_zero(last));
    }
}
