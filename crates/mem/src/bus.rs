//! The PMP-checked memory bus.
//!
//! Every access names its originating [`Channel`]; the bus consults the
//! [`PmpUnit`] (with the PTStore S-bit rules) *before* touching memory and
//! raises the access fault the modified core would raise (paper §IV-A1).

use ptstore_core::{
    AccessContext, AccessError, AccessKind, Channel, PhysAddr, PhysPageNum, PmpUnit, SecureRegion,
};

use crate::phys::PhysMem;
use crate::stats::AccessStats;

/// Physical memory behind a PMP with the PTStore extension.
///
/// ```
/// use ptstore_core::prelude::*;
/// use ptstore_mem::Bus;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut bus = Bus::new(256 * MIB);
/// let region = SecureRegion::new(PhysAddr::new(192 * MIB), 64 * MIB)?;
/// bus.install_secure_region(&region)?;
/// let ctx = AccessContext::supervisor(true);
///
/// // The kernel writes a PTE with sd.pt...
/// bus.write_u64(PhysAddr::new(192 * MIB), 0x1234, Channel::SecurePt, ctx)?;
/// // ...while an attacker-controlled regular store faults.
/// assert!(bus
///     .write_u64(PhysAddr::new(192 * MIB), 0, Channel::Regular, ctx)
///     .is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    mem: PhysMem,
    pmp: PmpUnit,
    stats: AccessStats,
}

impl Bus {
    /// A bus over `size` bytes of fresh memory and a clear PMP.
    ///
    /// # Panics
    /// Panics unless `size` is a non-zero multiple of the page size.
    pub fn new(size: u64) -> Self {
        Self {
            mem: PhysMem::new(size),
            pmp: PmpUnit::new(),
            stats: AccessStats::new(),
        }
    }

    /// Installs the secure region into the PMP (the boot-time SBI call).
    ///
    /// # Errors
    /// See [`PmpUnit::install_secure_region`].
    pub fn install_secure_region(
        &mut self,
        region: &SecureRegion,
    ) -> Result<(), ptstore_core::RegionError> {
        self.pmp.install_secure_region(region)
    }

    /// Moves the secure region boundary (the SBI `set` call used by dynamic
    /// adjustment).
    ///
    /// # Errors
    /// See [`PmpUnit::update_secure_region`].
    pub fn update_secure_region(
        &mut self,
        region: &SecureRegion,
    ) -> Result<(), ptstore_core::RegionError> {
        self.pmp.update_secure_region(region)
    }

    /// The installed secure region, if any.
    pub fn secure_region(&self) -> Option<SecureRegion> {
        self.pmp.secure_region()
    }

    /// Direct access to the PMP unit (M-mode CSR interface).
    pub fn pmp(&self) -> &PmpUnit {
        &self.pmp
    }

    /// Mutable access to the PMP unit (M-mode CSR interface).
    pub fn pmp_mut(&mut self) -> &mut PmpUnit {
        &mut self.pmp
    }

    /// Accumulated access statistics.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Resets the access statistics.
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::new();
    }

    /// Raw physical memory, bypassing the PMP.
    ///
    /// This is the *DRAM's-eye view* used by the simulator infrastructure
    /// itself (loading programs at boot, assertions in tests). Kernel and
    /// attacker code must go through the checked accessors instead.
    pub fn mem_unchecked(&mut self) -> &mut PhysMem {
        &mut self.mem
    }

    /// Read-only raw view of physical memory, bypassing the PMP.
    pub fn mem(&self) -> &PhysMem {
        &self.mem
    }

    fn guard(
        &mut self,
        addr: PhysAddr,
        kind: AccessKind,
        channel: Channel,
        ctx: AccessContext,
    ) -> Result<(), AccessError> {
        match self.pmp.check(addr, kind, channel, ctx) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.stats.record_fault();
                Err(e)
            }
        }
    }

    /// Checked aligned 8-byte read.
    ///
    /// # Errors
    /// PMP/PTStore denials, misalignment, or out-of-range access.
    pub fn read_u64(
        &mut self,
        addr: PhysAddr,
        channel: Channel,
        ctx: AccessContext,
    ) -> Result<u64, AccessError> {
        self.guard(addr, AccessKind::Read, channel, ctx)?;
        let v = self.mem.read_u64(addr)?;
        self.stats.record(channel, AccessKind::Read);
        Ok(v)
    }

    /// Checked aligned 8-byte write.
    ///
    /// # Errors
    /// PMP/PTStore denials, misalignment, or out-of-range access.
    pub fn write_u64(
        &mut self,
        addr: PhysAddr,
        value: u64,
        channel: Channel,
        ctx: AccessContext,
    ) -> Result<(), AccessError> {
        self.guard(addr, AccessKind::Write, channel, ctx)?;
        self.mem.write_u64(addr, value)?;
        self.stats.record(channel, AccessKind::Write);
        Ok(())
    }

    /// Checked byte read.
    ///
    /// # Errors
    /// PMP/PTStore denials or out-of-range access.
    pub fn read_u8(
        &mut self,
        addr: PhysAddr,
        channel: Channel,
        ctx: AccessContext,
    ) -> Result<u8, AccessError> {
        self.guard(addr, AccessKind::Read, channel, ctx)?;
        let v = self.mem.read_u8(addr)?;
        self.stats.record(channel, AccessKind::Read);
        Ok(v)
    }

    /// Checked byte write.
    ///
    /// # Errors
    /// PMP/PTStore denials or out-of-range access.
    pub fn write_u8(
        &mut self,
        addr: PhysAddr,
        value: u8,
        channel: Channel,
        ctx: AccessContext,
    ) -> Result<(), AccessError> {
        self.guard(addr, AccessKind::Write, channel, ctx)?;
        self.mem.write_u8(addr, value)?;
        self.stats.record(channel, AccessKind::Write);
        Ok(())
    }

    /// Checked instruction-fetch parcel (16-bit, for the C extension).
    ///
    /// # Errors
    /// PMP/PTStore denials, misalignment, or out-of-range access.
    pub fn fetch_u16(&mut self, addr: PhysAddr, ctx: AccessContext) -> Result<u16, AccessError> {
        self.guard(addr, AccessKind::Execute, Channel::Regular, ctx)?;
        let v = self.mem.read_u16(addr)?;
        self.stats.record(Channel::Regular, AccessKind::Execute);
        Ok(v)
    }

    /// Checked instruction fetch (32-bit).
    ///
    /// # Errors
    /// PMP/PTStore denials, misalignment, or out-of-range access.
    pub fn fetch_u32(&mut self, addr: PhysAddr, ctx: AccessContext) -> Result<u32, AccessError> {
        self.guard(addr, AccessKind::Execute, Channel::Regular, ctx)?;
        let v = self.mem.read_u32(addr)?;
        self.stats.record(Channel::Regular, AccessKind::Execute);
        Ok(v)
    }

    /// Checked u32 write (used by program loaders running in M-mode).
    ///
    /// # Errors
    /// PMP/PTStore denials, misalignment, or out-of-range access.
    pub fn write_u32(
        &mut self,
        addr: PhysAddr,
        value: u32,
        channel: Channel,
        ctx: AccessContext,
    ) -> Result<(), AccessError> {
        self.guard(addr, AccessKind::Write, channel, ctx)?;
        self.mem.write_u32(addr, value)?;
        self.stats.record(channel, AccessKind::Write);
        Ok(())
    }

    /// Checked whole-page zero test (reads via `ld.pt`, so only meaningful
    /// for secure-region pages). Counts as a single read burst.
    ///
    /// # Errors
    /// PMP/PTStore denials or out-of-range access.
    pub fn secure_page_is_zero(
        &mut self,
        ppn: PhysPageNum,
        ctx: AccessContext,
    ) -> Result<bool, AccessError> {
        self.guard(ppn.base_addr(), AccessKind::Read, Channel::SecurePt, ctx)?;
        self.stats.record(Channel::SecurePt, AccessKind::Read);
        Ok(self.mem.page_is_zero(ppn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptstore_core::{MIB, PAGE_SIZE};

    fn secured_bus() -> (Bus, SecureRegion) {
        let mut bus = Bus::new(256 * MIB);
        let region = SecureRegion::new(PhysAddr::new(192 * MIB), 64 * MIB).unwrap();
        bus.install_secure_region(&region).unwrap();
        (bus, region)
    }

    #[test]
    fn channel_rules_enforced_end_to_end() {
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        let inside = region.base() + 0x40;
        let outside = PhysAddr::new(MIB);

        bus.write_u64(inside, 7, Channel::SecurePt, ctx).unwrap();
        assert_eq!(bus.read_u64(inside, Channel::SecurePt, ctx).unwrap(), 7);
        assert!(bus.read_u64(inside, Channel::Regular, ctx).is_err());
        assert!(bus.write_u64(inside, 0, Channel::Regular, ctx).is_err());
        assert!(bus.read_u64(outside, Channel::SecurePt, ctx).is_err());
        assert!(bus.read_u64(outside, Channel::Regular, ctx).is_ok());
        // Stats: 2 secure ok (w+r), faults 3.
        assert_eq!(bus.stats().secure_total(), 2);
        assert_eq!(bus.stats().faults, 3);
    }

    #[test]
    fn ptw_channel_respects_satp_s() {
        let (mut bus, region) = secured_bus();
        let inside = region.base();
        let outside = PhysAddr::new(2 * MIB);
        assert!(bus
            .read_u64(inside, Channel::Ptw, AccessContext::supervisor(true))
            .is_ok());
        assert!(bus
            .read_u64(outside, Channel::Ptw, AccessContext::supervisor(true))
            .is_err());
        assert!(bus
            .read_u64(outside, Channel::Ptw, AccessContext::supervisor(false))
            .is_ok());
    }

    #[test]
    fn boundary_update_takes_effect_immediately() {
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        let new_page = region.base() - PAGE_SIZE;
        // Before adjustment the page is normal memory.
        bus.write_u64(new_page, 1, Channel::Regular, ctx).unwrap();
        let grown = region.grow_down(PAGE_SIZE).unwrap();
        bus.update_secure_region(&grown).unwrap();
        assert!(bus.write_u64(new_page, 2, Channel::Regular, ctx).is_err());
        assert!(bus.write_u64(new_page, 2, Channel::SecurePt, ctx).is_ok());
        assert_eq!(bus.secure_region(), Some(grown));
    }

    #[test]
    fn secure_page_zero_check() {
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        let ppn = PhysPageNum::from(region.base());
        assert!(bus.secure_page_is_zero(ppn, ctx).unwrap());
        bus.write_u64(region.base() + 8, 3, Channel::SecurePt, ctx).unwrap();
        assert!(!bus.secure_page_is_zero(ppn, ctx).unwrap());
        // Zero check on a normal page faults (it reads via ld.pt).
        assert!(bus.secure_page_is_zero(PhysPageNum::new(1), ctx).is_err());
    }

    #[test]
    fn fetch_from_secure_region_denied() {
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        assert!(bus.fetch_u32(region.base(), ctx).is_err());
        assert!(bus.fetch_u32(PhysAddr::new(0x1000), ctx).is_ok());
    }
}
