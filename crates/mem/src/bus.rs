//! The PMP-checked memory bus.
//!
//! Every access names its originating [`Channel`]; the bus consults the
//! [`PmpUnit`] (with the PTStore S-bit rules) *before* touching memory and
//! raises the access fault the modified core would raise (paper §IV-A1).
//!
//! Data moves through three width-generic accessors — [`Bus::read`],
//! [`Bus::write`], and [`Bus::fetch`] — parameterised over the RV64 transfer
//! widths via the sealed [`BusData`] trait.

use ptstore_core::{
    AccessContext, AccessError, AccessKind, Channel, PhysAddr, PhysPageNum, PmpUnit, SecureRegion,
};
use ptstore_trace::{TraceEvent, TraceSink};

use crate::phys::PhysMem;
use crate::stats::AccessStats;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// A primitive the bus can move in one transfer.
///
/// Sealed over exactly `u8`, `u16`, `u32`, and `u64` — the RV64 load/store
/// widths. Parameterises the width-generic [`Bus::read`], [`Bus::write`], and
/// [`Bus::fetch`] accessors.
pub trait BusData: sealed::Sealed + Copy {
    /// Transfer width in bytes.
    const WIDTH: u8;

    #[doc(hidden)]
    fn load(mem: &PhysMem, addr: PhysAddr) -> Result<Self, AccessError>;

    #[doc(hidden)]
    fn store(mem: &mut PhysMem, addr: PhysAddr, value: Self) -> Result<(), AccessError>;
}

macro_rules! bus_data {
    ($($ty:ty, $width:literal, $read:ident, $write:ident;)*) => {
        $(impl BusData for $ty {
            const WIDTH: u8 = $width;

            #[inline]
            fn load(mem: &PhysMem, addr: PhysAddr) -> Result<Self, AccessError> {
                mem.$read(addr)
            }

            #[inline]
            fn store(mem: &mut PhysMem, addr: PhysAddr, value: Self) -> Result<(), AccessError> {
                mem.$write(addr, value)
            }
        })*
    };
}

bus_data! {
    u8, 1, read_u8, write_u8;
    u16, 2, read_u16, write_u16;
    u32, 4, read_u32, write_u32;
    u64, 8, read_u64, write_u64;
}

/// Physical memory behind a PMP with the PTStore extension.
///
/// ```
/// use ptstore_core::prelude::*;
/// use ptstore_mem::Bus;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut bus = Bus::new(256 * MIB);
/// let region = SecureRegion::new(PhysAddr::new(192 * MIB), 64 * MIB)?;
/// bus.install_secure_region(&region)?;
/// let ctx = AccessContext::supervisor(true);
///
/// // The kernel writes a PTE with sd.pt...
/// bus.write::<u64>(PhysAddr::new(192 * MIB), 0x1234, Channel::SecurePt, ctx)?;
/// // ...while an attacker-controlled regular store faults.
/// assert!(bus
///     .write::<u64>(PhysAddr::new(192 * MIB), 0, Channel::Regular, ctx)
///     .is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    mem: PhysMem,
    pmp: PmpUnit,
    stats: AccessStats,
    trace: Option<TraceSink>,
}

impl Bus {
    /// A bus over `size` bytes of fresh memory and a clear PMP.
    ///
    /// # Panics
    /// Panics unless `size` is a non-zero multiple of the page size.
    pub fn new(size: u64) -> Self {
        Self {
            mem: PhysMem::new(size),
            pmp: PmpUnit::new(),
            stats: AccessStats::new(),
            trace: None,
        }
    }

    /// Attaches (or, with `None`, detaches) a trace sink. The sink is also
    /// forwarded to the PMP so check verdicts and bus transfers interleave in
    /// one event stream.
    pub fn set_trace_sink(&mut self, sink: Option<TraceSink>) {
        self.pmp.set_trace_sink(sink.clone());
        self.trace = sink;
    }

    /// The attached trace sink, if any. The MMU walker borrows this to emit
    /// walk-step events into the same stream.
    pub fn trace_sink(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Installs the secure region into the PMP (the boot-time SBI call).
    ///
    /// # Errors
    /// See [`PmpUnit::install_secure_region`].
    pub fn install_secure_region(
        &mut self,
        region: &SecureRegion,
    ) -> Result<(), ptstore_core::RegionError> {
        self.pmp.install_secure_region(region)
    }

    /// Moves the secure region boundary (the SBI `set` call used by dynamic
    /// adjustment).
    ///
    /// # Errors
    /// See [`PmpUnit::update_secure_region`].
    pub fn update_secure_region(
        &mut self,
        region: &SecureRegion,
    ) -> Result<(), ptstore_core::RegionError> {
        self.pmp.update_secure_region(region)
    }

    /// The installed secure region, if any.
    pub fn secure_region(&self) -> Option<SecureRegion> {
        self.pmp.secure_region()
    }

    /// Direct access to the PMP unit (M-mode CSR interface).
    pub fn pmp(&self) -> &PmpUnit {
        &self.pmp
    }

    /// Mutable access to the PMP unit (M-mode CSR interface).
    pub fn pmp_mut(&mut self) -> &mut PmpUnit {
        &mut self.pmp
    }

    /// Accumulated access statistics.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Resets the access statistics.
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::new();
    }

    /// Raw physical memory, bypassing the PMP.
    ///
    /// This is the *DRAM's-eye view* used by the simulator infrastructure
    /// itself (loading programs at boot, assertions in tests). Kernel and
    /// attacker code must go through the checked accessors instead.
    pub fn mem_unchecked(&mut self) -> &mut PhysMem {
        &mut self.mem
    }

    /// Read-only raw view of physical memory, bypassing the PMP.
    pub fn mem(&self) -> &PhysMem {
        &self.mem
    }

    #[inline]
    fn guard(
        &mut self,
        addr: PhysAddr,
        kind: AccessKind,
        channel: Channel,
        ctx: AccessContext,
    ) -> Result<(), AccessError> {
        match self.pmp.check(addr, kind, channel, ctx) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.stats.record_fault();
                Err(e)
            }
        }
    }

    /// Checked read of one `W`-sized value.
    ///
    /// # Errors
    /// PMP/PTStore denials, misalignment, or out-of-range access.
    #[inline]
    pub fn read<W: BusData>(
        &mut self,
        addr: PhysAddr,
        channel: Channel,
        ctx: AccessContext,
    ) -> Result<W, AccessError> {
        self.guard(addr, AccessKind::Read, channel, ctx)?;
        let v = W::load(&self.mem, addr)?;
        self.stats.record(channel, AccessKind::Read);
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::BusRead {
                addr: addr.as_u64(),
                width: W::WIDTH,
                channel: channel.into(),
            });
        }
        Ok(v)
    }

    /// Checked write of one `W`-sized value.
    ///
    /// # Errors
    /// PMP/PTStore denials, misalignment, or out-of-range access.
    #[inline]
    pub fn write<W: BusData>(
        &mut self,
        addr: PhysAddr,
        value: W,
        channel: Channel,
        ctx: AccessContext,
    ) -> Result<(), AccessError> {
        self.guard(addr, AccessKind::Write, channel, ctx)?;
        W::store(&mut self.mem, addr, value)?;
        self.stats.record(channel, AccessKind::Write);
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::BusWrite {
                addr: addr.as_u64(),
                width: W::WIDTH,
                channel: channel.into(),
            });
        }
        Ok(())
    }

    /// Checked instruction fetch of one `W`-sized parcel. Fetches always use
    /// the regular channel — there is no `fetch.pt` (paper §III-C1).
    ///
    /// # Errors
    /// PMP/PTStore denials, misalignment, or out-of-range access.
    #[inline]
    pub fn fetch<W: BusData>(
        &mut self,
        addr: PhysAddr,
        ctx: AccessContext,
    ) -> Result<W, AccessError> {
        self.guard(addr, AccessKind::Execute, Channel::Regular, ctx)?;
        let v = W::load(&self.mem, addr)?;
        self.stats.record(Channel::Regular, AccessKind::Execute);
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::BusFetch {
                addr: addr.as_u64(),
                width: W::WIDTH,
            });
        }
        Ok(v)
    }

    /// Flips bit `bit` of the 8-byte word at `addr` through the checked
    /// write path: the old value is sampled raw (DRAM's-eye view, no charge),
    /// then the flipped word is stored via [`Bus::write`] on `channel` under
    /// `ctx`, so the PMP adjudicates the fault exactly as it would a rogue
    /// store. Used by the `ptstore-fault` injector to model single-bit PTE
    /// corruption attempts.
    ///
    /// # Errors
    /// PMP/PTStore denials, misalignment, or out-of-range access — in which
    /// case memory is unchanged.
    pub fn inject_bit_flip(
        &mut self,
        addr: PhysAddr,
        bit: u32,
        channel: Channel,
        ctx: AccessContext,
    ) -> Result<u64, AccessError> {
        let old = self.mem.read_u64(addr)?;
        let new = old ^ (1u64 << (bit % 64));
        self.write::<u64>(addr, new, channel, ctx)?;
        Ok(new)
    }

    /// Checked whole-page zero test (reads via `ld.pt`, so only meaningful
    /// for secure-region pages). Counts as a single read burst.
    ///
    /// # Errors
    /// PMP/PTStore denials or out-of-range access.
    pub fn secure_page_is_zero(
        &mut self,
        ppn: PhysPageNum,
        ctx: AccessContext,
    ) -> Result<bool, AccessError> {
        self.guard(ppn.base_addr(), AccessKind::Read, Channel::SecurePt, ctx)?;
        self.stats.record(Channel::SecurePt, AccessKind::Read);
        Ok(self.mem.page_is_zero(ppn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptstore_core::{MIB, PAGE_SIZE};

    fn secured_bus() -> (Bus, SecureRegion) {
        let mut bus = Bus::new(256 * MIB);
        let region = SecureRegion::new(PhysAddr::new(192 * MIB), 64 * MIB).unwrap();
        bus.install_secure_region(&region).unwrap();
        (bus, region)
    }

    #[test]
    fn channel_rules_enforced_end_to_end() {
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        let inside = region.base() + 0x40;
        let outside = PhysAddr::new(MIB);

        bus.write::<u64>(inside, 7, Channel::SecurePt, ctx).unwrap();
        assert_eq!(bus.read::<u64>(inside, Channel::SecurePt, ctx).unwrap(), 7);
        assert!(bus.read::<u64>(inside, Channel::Regular, ctx).is_err());
        assert!(bus.write::<u64>(inside, 0, Channel::Regular, ctx).is_err());
        assert!(bus.read::<u64>(outside, Channel::SecurePt, ctx).is_err());
        assert!(bus.read::<u64>(outside, Channel::Regular, ctx).is_ok());
        // Stats: 2 secure ok (w+r), faults 3.
        assert_eq!(bus.stats().secure_total(), 2);
        assert_eq!(bus.stats().faults, 3);
    }

    #[test]
    fn ptw_channel_respects_satp_s() {
        let (mut bus, region) = secured_bus();
        let inside = region.base();
        let outside = PhysAddr::new(2 * MIB);
        assert!(bus
            .read::<u64>(inside, Channel::Ptw, AccessContext::supervisor(true))
            .is_ok());
        assert!(bus
            .read::<u64>(outside, Channel::Ptw, AccessContext::supervisor(true))
            .is_err());
        assert!(bus
            .read::<u64>(outside, Channel::Ptw, AccessContext::supervisor(false))
            .is_ok());
    }

    #[test]
    fn boundary_update_takes_effect_immediately() {
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        let new_page = region.base() - PAGE_SIZE;
        // Before adjustment the page is normal memory.
        bus.write::<u64>(new_page, 1, Channel::Regular, ctx)
            .unwrap();
        let grown = region.grow_down(PAGE_SIZE).unwrap();
        bus.update_secure_region(&grown).unwrap();
        assert!(bus
            .write::<u64>(new_page, 2, Channel::Regular, ctx)
            .is_err());
        assert!(bus
            .write::<u64>(new_page, 2, Channel::SecurePt, ctx)
            .is_ok());
        assert_eq!(bus.secure_region(), Some(grown));
    }

    #[test]
    fn secure_page_zero_check() {
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        let ppn = PhysPageNum::from(region.base());
        assert!(bus.secure_page_is_zero(ppn, ctx).unwrap());
        bus.write::<u64>(region.base() + 8, 3, Channel::SecurePt, ctx)
            .unwrap();
        assert!(!bus.secure_page_is_zero(ppn, ctx).unwrap());
        // Zero check on a normal page faults (it reads via ld.pt).
        assert!(bus.secure_page_is_zero(PhysPageNum::new(1), ctx).is_err());
    }

    #[test]
    fn fetch_from_secure_region_denied() {
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        assert!(bus.fetch::<u32>(region.base(), ctx).is_err());
        assert!(bus.fetch::<u32>(PhysAddr::new(0x1000), ctx).is_ok());
    }

    #[test]
    fn all_widths_round_trip() {
        let (mut bus, _) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        let base = PhysAddr::new(0x4000);
        bus.write::<u8>(base, 0xab, Channel::Regular, ctx).unwrap();
        bus.write::<u16>(base + 2, 0xbeef, Channel::Regular, ctx)
            .unwrap();
        bus.write::<u32>(base + 4, 0xdead_beef, Channel::Regular, ctx)
            .unwrap();
        bus.write::<u64>(base + 8, 0x0123_4567_89ab_cdef, Channel::Regular, ctx)
            .unwrap();
        assert_eq!(bus.read::<u8>(base, Channel::Regular, ctx).unwrap(), 0xab);
        assert_eq!(
            bus.read::<u16>(base + 2, Channel::Regular, ctx).unwrap(),
            0xbeef
        );
        assert_eq!(
            bus.read::<u32>(base + 4, Channel::Regular, ctx).unwrap(),
            0xdead_beef
        );
        assert_eq!(
            bus.read::<u64>(base + 8, Channel::Regular, ctx).unwrap(),
            0x0123_4567_89ab_cdef
        );
    }

    #[test]
    fn trace_sink_sees_transfers_and_denials() {
        let (mut bus, region) = secured_bus();
        let ctx = AccessContext::supervisor(true);
        let sink = ptstore_trace::TraceSink::new();
        bus.set_trace_sink(Some(sink.clone()));

        bus.write::<u64>(region.base(), 1, Channel::SecurePt, ctx)
            .unwrap();
        assert!(bus
            .read::<u64>(region.base(), Channel::Regular, ctx)
            .is_err());
        bus.fetch::<u32>(PhysAddr::new(0x1000), ctx).unwrap();

        let counters = sink.counters();
        assert_eq!(counters.bus_writes, 1);
        assert_eq!(counters.bus_fetches, 1);
        // Three PMP checks, one denial.
        assert_eq!(counters.pmp_checks, 3);
        assert_eq!(counters.pmp_denials, 1);
        let denial = sink.last_denial().expect("denied read must be traced");
        assert_eq!(
            denial.rejecting_layer(),
            Some(ptstore_trace::RejectingLayer::PmpSBit)
        );
    }
}
