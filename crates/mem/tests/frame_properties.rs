//! Property tests: the adaptive frame backing must be indistinguishable
//! from a plain 4 KiB byte array.

use proptest::prelude::*;
use ptstore_core::{PhysAddr, PAGE_SIZE};
use ptstore_mem::{Frame, PhysMem};

/// A write operation against one frame.
#[derive(Debug, Clone)]
enum FrameOp {
    WriteWord { index: u16, value: u64 },
    WriteByte { offset: u16, value: u8 },
}

fn arb_frame_op() -> impl Strategy<Value = FrameOp> {
    prop_oneof![
        (0u16..512, any::<u64>()).prop_map(|(index, value)| FrameOp::WriteWord { index, value }),
        (0u16..4096, any::<u8>()).prop_map(|(offset, value)| FrameOp::WriteByte { offset, value }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The frame agrees with a reference byte array after any op sequence,
    /// across all backing promotions.
    #[test]
    fn frame_matches_reference(ops in proptest::collection::vec(arb_frame_op(), 1..300)) {
        let mut frame = Frame::new();
        let mut reference = [0u8; PAGE_SIZE as usize];
        for op in ops {
            match op {
                FrameOp::WriteWord { index, value } => {
                    frame.write_word(index, value);
                    reference[index as usize * 8..index as usize * 8 + 8]
                        .copy_from_slice(&value.to_le_bytes());
                }
                FrameOp::WriteByte { offset, value } => {
                    frame.write_byte(offset, value);
                    reference[offset as usize] = value;
                }
            }
        }
        // Full readback comparison, both word- and byte-granular.
        for i in 0u16..512 {
            let want = u64::from_le_bytes(
                reference[i as usize * 8..i as usize * 8 + 8].try_into().expect("8"),
            );
            prop_assert_eq!(frame.read_word(i), want, "word {}", i);
        }
        for off in (0u16..4096).step_by(97) {
            prop_assert_eq!(frame.read_byte(off), reference[off as usize], "byte {}", off);
        }
        prop_assert_eq!(frame.is_zero(), reference.iter().all(|&b| b == 0));
    }

    /// PhysMem u8/u32/u64 accessors are mutually consistent.
    #[test]
    fn physmem_width_consistency(
        word_addr in (0u64..(16 * PAGE_SIZE / 8)).prop_map(|w| w * 8),
        value in any::<u64>(),
    ) {
        let mut m = PhysMem::new(16 * PAGE_SIZE);
        let a = PhysAddr::new(word_addr);
        m.write_u64(a, value).expect("in range");
        // Byte view.
        for i in 0..8u64 {
            prop_assert_eq!(
                m.read_u8(a + i).expect("in range"),
                value.to_le_bytes()[i as usize]
            );
        }
        // u32 halves.
        prop_assert_eq!(m.read_u32(a).expect("in range"), value as u32);
        prop_assert_eq!(m.read_u32(a + 4).expect("in range"), (value >> 32) as u32);
        // Rewrite one byte, reread the word.
        m.write_u8(a + 3, 0xAB).expect("in range");
        let mut bytes = value.to_le_bytes();
        bytes[3] = 0xAB;
        prop_assert_eq!(m.read_u64(a).expect("in range"), u64::from_le_bytes(bytes));
    }

    /// copy_page produces bit-identical pages; zero_page fully clears.
    #[test]
    fn copy_and_zero(ops in proptest::collection::vec((0u16..512, any::<u64>()), 1..64)) {
        let mut m = PhysMem::new(16 * PAGE_SIZE);
        let src = ptstore_core::PhysPageNum::new(2);
        let dst = ptstore_core::PhysPageNum::new(7);
        for &(w, v) in &ops {
            m.write_u64(src.base_addr() + w as u64 * 8, v).expect("write");
        }
        m.copy_page(src, dst).expect("copy");
        for w in 0u64..512 {
            prop_assert_eq!(
                m.read_u64(src.base_addr() + w * 8).expect("read"),
                m.read_u64(dst.base_addr() + w * 8).expect("read")
            );
        }
        m.zero_page(dst);
        prop_assert!(m.page_is_zero(dst));
        prop_assert_eq!(m.read_u64(dst.base_addr()).expect("read"), 0);
    }
}
