//! The PTStore hardware delta, enumerated structurally.
//!
//! These are the 58 Chisel lines of paper Table I turned into gates: every
//! block below names a concrete piece of added logic from §IV-A1. Totals
//! land on the synthesis delta of Table III (+508 LUTs, +96 FFs on the
//! core).

use crate::component::Component;

/// The added logic for a core with `pmp_entries` PMP entries.
///
/// | block | what it is |
/// |---|---|
/// | `pmpcfg S-bits` | one new state bit per entry + CSR write masking |
/// | `ld.pt/sd.pt decode` | two opcode matchers in the custom-0/1 space |
/// | `lsu channel gating` | deny Regular∈S and SecurePt∉S at the LSU |
/// | `satp.S bit` | one CSR bit + write plumbing |
/// | `ptw origin check` | qualify walker requests against the S match |
/// | `access-fault encode` | extend the fault cause mux/latches |
pub fn ptstore_delta(pmp_entries: u64) -> Vec<Component> {
    vec![
        Component::new("pmpcfg S-bits", 2 * pmp_entries, pmp_entries),
        Component::new("ld.pt/sd.pt decode", 38, 0),
        Component::new("lsu channel gating", 148, 0),
        Component::new("satp.S bit", 6, 1),
        Component::new("ptw origin check", 236, 80),
        Component::new("access-fault encode", 64, 7),
    ]
}

/// Delta totals for a configuration.
pub fn delta_totals(pmp_entries: u64) -> (u64, u64) {
    let cs = ptstore_delta(pmp_entries);
    (
        crate::component::total_lut(&cs),
        crate::component::total_ff(&cs),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boom::{CORE_BASE_FF, CORE_BASE_LUT};

    /// Paper Table III: with-PTStore core is 55,875 LUT / 37,423 FF.
    #[test]
    fn delta_matches_table3() {
        let (lut, ff) = delta_totals(8);
        assert_eq!(CORE_BASE_LUT + lut, 55_875);
        assert_eq!(CORE_BASE_FF + ff, 37_423);
    }

    /// Paper abstract: <0.92 % hardware overhead.
    #[test]
    fn overhead_below_paper_bound() {
        let (lut, ff) = delta_totals(8);
        let lut_pct = lut as f64 / CORE_BASE_LUT as f64 * 100.0;
        let ff_pct = ff as f64 / CORE_BASE_FF as f64 * 100.0;
        assert!(lut_pct < 0.92, "lut overhead {lut_pct:.3}%");
        assert!(ff_pct < 0.3, "ff overhead {ff_pct:.3}%");
        // And matches the reported +0.918 % / +0.258 % closely.
        assert!((lut_pct - 0.918).abs() < 0.01);
        assert!((ff_pct - 0.258).abs() < 0.01);
    }

    /// The S-bit cost scales with the number of PMP entries; everything else
    /// is fixed.
    #[test]
    fn scales_with_pmp_entries() {
        let (lut8, ff8) = delta_totals(8);
        let (lut16, ff16) = delta_totals(16);
        assert_eq!(lut16 - lut8, 16);
        assert_eq!(ff16 - ff8, 8);
    }
}
