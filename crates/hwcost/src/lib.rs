//! # ptstore-hwcost
//!
//! A structural FPGA resource and timing model reproducing Table III of the
//! paper: LUT/FF usage and worst setup slack (WSS) / Fmax of the prototype
//! system — a RISC-V BOOM `SmallBoom` core (FPU disabled) plus Xilinx
//! peripherals on a Kintex-7 XC7K420T at a 90 MHz target.
//!
//! The model is parametric where PTStore touches the design: the delta logic
//! (the S-bit per PMP entry, decode of `ld.pt`/`sd.pt`, the `satp.S` bit, the
//! PTW origin comparator, and the access-fault gating) is enumerated
//! gate-by-gate from the architecture, while the large baseline blocks are
//! sized from their microarchitectural parameters with constants calibrated
//! against the paper's synthesis results. A named *calibration residual*
//! component absorbs what the formulas cannot see (routing, glue, carry
//! logic), keeping the baseline totals exact and — crucially — keeping the
//! *delta* purely structural.
//!
//! ```
//! use ptstore_hwcost::{table3, BoomConfig};
//!
//! let rows = table3(&BoomConfig::small_boom());
//! assert_eq!(rows[1].core_lut - rows[0].core_lut, 508); // the paper's delta
//! assert!(rows[1].core_lut_pct.unwrap() < 0.92);
//! ```

#![deny(missing_docs)]

pub mod boom;
pub mod component;
pub mod power;
pub mod ptstore;
pub mod report;
pub mod system;
pub mod timing;

pub use boom::BoomConfig;
pub use component::Component;
pub use power::{dynamic_power, estimate, PowerEstimate};
pub use ptstore::ptstore_delta;
pub use report::{table3, Table3Row};
pub use system::{peripherals, SystemCost};
pub use timing::TimingModel;
