//! Parametric resource model of the RISC-V BOOM core (`SmallBooms`
//! configuration of paper Table II, FPU disabled).

use serde::{Deserialize, Serialize};

use crate::component::{total_ff, total_lut, Component};

/// Paper Table III baseline core LUTs (calibration target).
pub const CORE_BASE_LUT: u64 = 55_367;
/// Paper Table III baseline core FFs (calibration target).
pub const CORE_BASE_FF: u64 = 37_327;

/// Microarchitectural parameters of the modelled core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoomConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u64,
    /// Decode/rename width.
    pub decode_width: u64,
    /// Reorder-buffer entries.
    pub rob_entries: u64,
    /// Load-queue entries.
    pub ldq_entries: u64,
    /// Store-queue entries.
    pub stq_entries: u64,
    /// Integer physical registers.
    pub int_phys_regs: u64,
    /// BTB entries.
    pub btb_entries: u64,
    /// I-TLB entries (Table II: 32).
    pub itlb_entries: u64,
    /// D-TLB entries (Table II: 8).
    pub dtlb_entries: u64,
    /// PMP entries.
    pub pmp_entries: u64,
    /// FPU present (disabled in the prototype to keep the overheads
    /// visible, §V-A).
    pub fpu: bool,
}

impl BoomConfig {
    /// The `SmallBooms` configuration of the prototype (Table II).
    pub fn small_boom() -> Self {
        Self {
            fetch_width: 4,
            decode_width: 1,
            rob_entries: 32,
            ldq_entries: 8,
            stq_entries: 8,
            int_phys_regs: 52,
            btb_entries: 16,
            itlb_entries: 32,
            dtlb_entries: 8,
            pmp_entries: 8,
            fpu: false,
        }
    }

    /// The baseline (pre-PTStore) component list. The final entry is the
    /// calibration residual that pins the totals to the paper's synthesis
    /// results; every other entry is a parametric estimate.
    pub fn components(&self) -> Vec<Component> {
        let mut cs = vec![
            Component::new(
                "frontend (fetch+bpred)",
                430 * self.fetch_width + 55 * self.btb_entries,
                360 * self.fetch_width + 52 * self.btb_entries,
            ),
            Component::new("decode", 1_850 * self.decode_width, 240 * self.decode_width),
            Component::new(
                "rename (maptable+freelist)",
                1_150 * self.decode_width + 15 * self.int_phys_regs,
                290 + 8 * self.int_phys_regs,
            ),
            Component::new("rob", 92 * self.rob_entries, 68 * self.rob_entries),
            Component::new("issue units", 2_650, 1_180),
            Component::new(
                "int regfile + bypass",
                52 * self.int_phys_regs,
                64 * self.decode_width,
            ),
            Component::new("alu/mul/div", 3_420, 1_240),
            Component::new(
                "lsu (ldq+stq)",
                410 * (self.ldq_entries + self.stq_entries),
                172 * (self.ldq_entries + self.stq_entries),
            ),
            Component::new("l1i control", 3_050, 2_410),
            Component::new("l1d control", 4_180, 3_360),
            Component::new("itlb", 88 * self.itlb_entries, 71 * self.itlb_entries),
            Component::new("dtlb", 88 * self.dtlb_entries, 71 * self.dtlb_entries),
            Component::new("ptw", 1_380, 760),
            Component::new("csr file", 2_150, 1_490),
            Component::new(
                "pmp (match+priority)",
                205 * self.pmp_entries,
                62 * self.pmp_entries, // pmpaddr[53:0] + pmpcfg[7:0] per entry
            ),
        ];
        if self.fpu {
            cs.push(Component::new("fpu", 18_500, 9_800));
        }
        // Calibration residual: routing/glue/replication the block formulas
        // cannot see. Computed so the *baseline* totals equal Table III.
        let (lut_sum, ff_sum) = (total_lut(&cs), total_ff(&cs));
        let fpu_extra_lut = if self.fpu { 18_500 } else { 0 };
        let fpu_extra_ff = if self.fpu { 9_800 } else { 0 };
        cs.push(Component::new(
            "calibration residual",
            (CORE_BASE_LUT + fpu_extra_lut).saturating_sub(lut_sum),
            (CORE_BASE_FF + fpu_extra_ff).saturating_sub(ff_sum),
        ));
        cs
    }

    /// Baseline core totals.
    pub fn core_totals(&self) -> (u64, u64) {
        let cs = self.components();
        (total_lut(&cs), total_ff(&cs))
    }
}

impl Default for BoomConfig {
    fn default() -> Self {
        Self::small_boom()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_boom_matches_table3_baseline() {
        let (lut, ff) = BoomConfig::small_boom().core_totals();
        assert_eq!(lut, CORE_BASE_LUT);
        assert_eq!(ff, CORE_BASE_FF);
    }

    #[test]
    fn residual_is_a_minor_fraction() {
        // The parametric blocks must explain most of the core; the residual
        // exists but cannot dominate.
        let cs = BoomConfig::small_boom().components();
        let residual = cs.last().expect("non-empty");
        assert_eq!(residual.name, "calibration residual");
        assert!(
            residual.lut * 2 < CORE_BASE_LUT,
            "residual {} explains too much",
            residual.lut
        );
        assert!(residual.ff * 2 < CORE_BASE_FF);
    }

    #[test]
    fn fpu_config_is_larger() {
        let mut cfg = BoomConfig::small_boom();
        cfg.fpu = true;
        let (lut, ff) = cfg.core_totals();
        assert!(lut > CORE_BASE_LUT + 10_000);
        assert!(ff > CORE_BASE_FF + 5_000);
    }

    #[test]
    fn tlb_sizes_flow_into_cost() {
        let small = BoomConfig::small_boom();
        let mut big = small;
        big.itlb_entries = 64;
        // The parametric part grows; the residual shrinks to keep calibration
        // only for the *calibrated* configuration. For others, totals move.
        let itlb_small = small
            .components()
            .into_iter()
            .find(|c| c.name == "itlb")
            .expect("itlb modelled");
        let itlb_big = big
            .components()
            .into_iter()
            .find(|c| c.name == "itlb")
            .expect("itlb modelled");
        assert!(itlb_big.lut > itlb_small.lut);
    }
}
