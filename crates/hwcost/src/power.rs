//! Activity-based dynamic power estimation.
//!
//! §III-C2 of the paper rejects hypervisor/NPT-based isolation partly on
//! power grounds ("this will increase the area and the power consumption of
//! the processor"). This module quantifies that argument with the standard
//! FPGA dynamic-power proxy: `P ∝ f · Σ(toggle_rate · capacitance)`, with
//! per-block capacitance taken from the LUT/FF counts and toggle rates from
//! block activity classes. Absolute watts are not the point — the *ratio*
//! between PTStore's always-parallel PMP match and an always-walking NPT
//! unit is.

use serde::{Deserialize, Serialize};

use crate::boom::BoomConfig;
use crate::component::Component;
use crate::ptstore::ptstore_delta;

/// Average toggle activity of a block class (fraction of clocks its logic
/// switches).
fn activity(name: &str) -> f64 {
    match name {
        // Fetch/decode run every cycle.
        "frontend (fetch+bpred)" | "decode" => 0.45,
        // Backend structures toggle with issue rate.
        "rename (maptable+freelist)" | "rob" | "issue units" => 0.35,
        "int regfile + bypass" | "alu/mul/div" => 0.30,
        // Memory path.
        "lsu (ldq+stq)" | "l1d control" => 0.25,
        "l1i control" => 0.30,
        "itlb" | "dtlb" => 0.20,
        // The walker only runs on TLB misses.
        "ptw" => 0.04,
        "csr file" => 0.02,
        // PMP match is combinational on every access but tiny.
        "pmp (match+priority)" => 0.25,
        // PTStore delta blocks.
        "pmpcfg S-bits" => 0.01, // state bits rarely written
        "ld.pt/sd.pt decode" => 0.45,
        "lsu channel gating" => 0.25,
        "satp.S bit" => 0.01,
        "ptw origin check" => 0.04, // rides the walker's duty cycle
        "access-fault encode" => 0.02,
        // NPT comparison unit (see below).
        "npt walker + tags" => 0.30,
        _ => 0.10, // residual/uncore average
    }
}

/// Estimated dynamic power of a component set, in arbitrary units
/// normalised so the baseline SmallBoom core ≈ 1.0.
pub fn dynamic_power(components: &[Component]) -> f64 {
    let raw: f64 = components
        .iter()
        .map(|c| activity(c.name) * (c.lut as f64 + 0.6 * c.ff as f64))
        .sum();
    raw / BASELINE_RAW
}

/// Raw activity-weighted sum of the calibrated baseline core (computed once
/// from the SmallBoom block list; kept as a constant so the normalisation is
/// stable).
const BASELINE_RAW: f64 = 17_252.0;

/// Power summary for one build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerEstimate {
    /// Baseline core (normalised 1.0 reference).
    pub baseline: f64,
    /// Core with PTStore.
    pub with_ptstore: f64,
    /// Core with a hypervisor/NPT unit instead (the §III-C2 alternative).
    pub with_npt: f64,
}

/// Compares PTStore against the NPT-based alternative the paper rejects.
/// The NPT unit is modelled as a second walker plus nested-tag storage
/// (~2,800 LUTs / 1,900 FFs — a conservative reading of published 2D-walker
/// area), active on every TLB miss *and* every guest page-table edit.
pub fn estimate(cfg: &BoomConfig) -> PowerEstimate {
    let base = cfg.components();
    let baseline = dynamic_power(&base);

    let mut ptstore = base.clone();
    ptstore.extend(ptstore_delta(cfg.pmp_entries));
    let with_ptstore = dynamic_power(&ptstore);

    let mut npt = base;
    npt.push(Component::new("npt walker + tags", 2_800, 1_900));
    let with_npt = dynamic_power(&npt);

    PowerEstimate {
        baseline,
        with_ptstore,
        with_npt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_normalised() {
        let e = estimate(&BoomConfig::small_boom());
        assert!(
            (e.baseline - 1.0).abs() < 0.02,
            "baseline {:.4}",
            e.baseline
        );
    }

    #[test]
    fn ptstore_power_is_fraction_of_a_percent() {
        let e = estimate(&BoomConfig::small_boom());
        let overhead = (e.with_ptstore - e.baseline) / e.baseline * 100.0;
        assert!(
            overhead > 0.0 && overhead < 0.5,
            "PTStore power overhead {overhead:.3}% should be well under 0.5%"
        );
    }

    #[test]
    fn npt_costs_an_order_of_magnitude_more_power_than_ptstore() {
        // The quantified §III-C2 argument.
        let e = estimate(&BoomConfig::small_boom());
        let ptstore = e.with_ptstore - e.baseline;
        let npt = e.with_npt - e.baseline;
        assert!(
            npt > 10.0 * ptstore,
            "npt delta {npt:.4} vs ptstore delta {ptstore:.4}"
        );
    }

    #[test]
    fn activity_model_covers_every_block() {
        // No modelled block should silently fall to the default class except
        // the residual/uncore ones.
        let cfg = BoomConfig::small_boom();
        let mut blocks = cfg.components();
        blocks.extend(ptstore_delta(cfg.pmp_entries));
        for b in blocks {
            if b.name != "calibration residual" {
                assert!(
                    activity(b.name) != 0.10 || b.name.contains("residual"),
                    "block {} uses the default activity class",
                    b.name
                );
            }
        }
    }
}
