//! Table III regeneration.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::boom::BoomConfig;
use crate::system::SystemCost;
use crate::timing::TimingModel;

/// One row of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// "without PTStore" / "with PTStore".
    pub label: &'static str,
    /// Core LUTs.
    pub core_lut: u64,
    /// Core LUT overhead (% over baseline; `None` for the baseline row).
    pub core_lut_pct: Option<f64>,
    /// Core FFs.
    pub core_ff: u64,
    /// Core FF overhead.
    pub core_ff_pct: Option<f64>,
    /// System LUTs.
    pub system_lut: u64,
    /// System LUT overhead.
    pub system_lut_pct: Option<f64>,
    /// System FFs.
    pub system_ff: u64,
    /// System FF overhead.
    pub system_ff_pct: Option<f64>,
    /// Worst setup slack (ns).
    pub wss_ns: f64,
    /// Fmax (MHz).
    pub fmax_mhz: f64,
}

impl fmt::Display for Table3Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pct = |p: Option<f64>| match p {
            Some(v) => format!("{v:+.3}%"),
            None => "-".to_string(),
        };
        write!(
            f,
            "{:<16} | {:>6} {:>8} | {:>6} {:>8} | {:>6} {:>8} | {:>6} {:>8} | {:>6.3} | {:>7.3}",
            self.label,
            self.core_lut,
            pct(self.core_lut_pct),
            self.core_ff,
            pct(self.core_ff_pct),
            self.system_lut,
            pct(self.system_lut_pct),
            self.system_ff,
            pct(self.system_ff_pct),
            self.wss_ns,
            self.fmax_mhz
        )
    }
}

/// Regenerates Table III for `cfg`.
pub fn table3(cfg: &BoomConfig) -> [Table3Row; 2] {
    let base = SystemCost::synthesise(cfg, false);
    let with = SystemCost::synthesise(cfg, true);
    let t_base = TimingModel::implement(cfg, false);
    let t_with = TimingModel::implement(cfg, true);
    let pct = |a: u64, b: u64| (a as f64 - b as f64) / b as f64 * 100.0;
    [
        Table3Row {
            label: "without PTStore",
            core_lut: base.core_lut,
            core_lut_pct: None,
            core_ff: base.core_ff,
            core_ff_pct: None,
            system_lut: base.system_lut,
            system_lut_pct: None,
            system_ff: base.system_ff,
            system_ff_pct: None,
            wss_ns: t_base.wss_ns,
            fmax_mhz: t_base.fmax_mhz,
        },
        Table3Row {
            label: "with PTStore",
            core_lut: with.core_lut,
            core_lut_pct: Some(pct(with.core_lut, base.core_lut)),
            core_ff: with.core_ff,
            core_ff_pct: Some(pct(with.core_ff, base.core_ff)),
            system_lut: with.system_lut,
            system_lut_pct: Some(pct(with.system_lut, base.system_lut)),
            system_ff: with.system_ff,
            system_ff_pct: Some(pct(with.system_ff, base.system_ff)),
            wss_ns: t_with.wss_ns,
            fmax_mhz: t_with.fmax_mhz,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_reproduces_paper_core_numbers() {
        let rows = table3(&BoomConfig::small_boom());
        assert_eq!(rows[0].core_lut, 55_367);
        assert_eq!(rows[0].core_ff, 37_327);
        assert_eq!(rows[1].core_lut, 55_875);
        assert_eq!(rows[1].core_ff, 37_423);
        let lut_pct = rows[1].core_lut_pct.expect("overhead row");
        assert!((lut_pct - 0.918).abs() < 0.01);
        assert!(rows[1].fmax_mhz >= 90.0);
    }

    #[test]
    fn rows_render() {
        for r in table3(&BoomConfig::small_boom()) {
            let s = r.to_string();
            assert!(s.contains("PTStore"));
        }
    }
}
