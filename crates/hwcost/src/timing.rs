//! Static-timing model: worst setup slack and Fmax.
//!
//! PTStore's checks ride the existing PMP match logic, which evaluates in
//! parallel with the cache access — nothing lands on the critical path
//! (Table III shows Fmax even *improving* slightly, which is ordinary
//! place-and-route variance). The model reflects that: the critical path is
//! a function of the baseline microarchitecture; PTStore contributes only a
//! deterministic seed change to the P&R "jitter" term.

use serde::{Deserialize, Serialize};

use crate::boom::BoomConfig;

/// The synthesis timing target of the prototype (90.000 MHz).
pub const F_TARGET_MHZ: f64 = 90.0;

/// A deterministic stand-in for place-and-route variance: hash the design
/// name into a small slack perturbation (0–0.15 ns).
fn pnr_jitter_ns(design: &str) -> f64 {
    (ptstore_core::Fnv1a::hash_bytes(design.as_bytes()) % 150) as f64 / 1000.0
}

/// Timing results of one implementation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Clock period target (ns).
    pub period_ns: f64,
    /// Worst setup slack (ns); positive = timing met.
    pub wss_ns: f64,
    /// Maximum achievable frequency (MHz).
    pub fmax_mhz: f64,
}

impl TimingModel {
    /// Runs the model for `cfg`, with or without PTStore.
    pub fn implement(cfg: &BoomConfig, with_ptstore: bool) -> Self {
        let period_ns = 1000.0 / F_TARGET_MHZ;
        // Critical path: D-cache data + tag compare + LSU select. PMP (and
        // PTStore's S-bit qualification) is evaluated in parallel and merges
        // after the shorter tag path, so it adds ~0 to the worst path.
        let dcache_path = 7.9;
        let lsu_select = 1.6 + 0.01 * (cfg.ldq_entries + cfg.stq_entries) as f64;
        let rob_wakeup = 6.4 + 0.02 * cfg.rob_entries as f64;
        let pmp_parallel =
            3.1 + 0.05 * cfg.pmp_entries as f64 + if with_ptstore { 0.12 } else { 0.0 };
        let critical = (dcache_path + lsu_select)
            .max(rob_wakeup)
            .max(pmp_parallel + 1.4 /* fault merge */);
        let design = if with_ptstore { "boom+ptstore" } else { "boom" };
        let wss_ns = period_ns - critical - 1.29 /* clock skew+setup margin */
            - pnr_jitter_ns(design);
        let fmax_mhz = 1000.0 / (period_ns - wss_ns);
        Self {
            period_ns,
            wss_ns,
            fmax_mhz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_builds_meet_90mhz() {
        for with in [false, true] {
            let t = TimingModel::implement(&BoomConfig::small_boom(), with);
            assert!(t.wss_ns > 0.0, "timing met (wss {})", t.wss_ns);
            assert!(t.fmax_mhz >= F_TARGET_MHZ);
        }
    }

    #[test]
    fn ptstore_does_not_change_the_critical_path_class() {
        let base = TimingModel::implement(&BoomConfig::small_boom(), false);
        let with = TimingModel::implement(&BoomConfig::small_boom(), true);
        // The PMP path (even with the S-bit) stays dominated by the D-cache
        // path: Fmax differences are jitter-scale, exactly as in Table III
        // (90.269 vs 91.116 MHz).
        assert!((with.fmax_mhz - base.fmax_mhz).abs() < 2.0);
    }

    #[test]
    fn jitter_is_deterministic() {
        let a = TimingModel::implement(&BoomConfig::small_boom(), true);
        let b = TimingModel::implement(&BoomConfig::small_boom(), true);
        assert_eq!(a, b);
    }

    #[test]
    fn huge_pmp_eventually_hits_timing() {
        // Sanity: the model is not insensitive to its parameters.
        let mut cfg = BoomConfig::small_boom();
        cfg.pmp_entries = 128;
        let t = TimingModel::implement(&cfg, true);
        let small = TimingModel::implement(&BoomConfig::small_boom(), true);
        assert!(t.wss_ns < small.wss_ns);
    }
}
