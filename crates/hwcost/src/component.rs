//! One synthesisable block and its resource cost.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A named block with LUT/FF usage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Component {
    /// Block name (matches the RTL hierarchy it models).
    pub name: &'static str,
    /// Lookup tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
}

impl Component {
    /// A new block.
    pub const fn new(name: &'static str, lut: u64, ff: u64) -> Self {
        Self { name, lut, ff }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<28} {:>8} LUT {:>8} FF", self.name, self.lut, self.ff)
    }
}

/// Sums LUTs over components.
pub fn total_lut(components: &[Component]) -> u64 {
    components.iter().map(|c| c.lut).sum()
}

/// Sums FFs over components.
pub fn total_ff(components: &[Component]) -> u64 {
    components.iter().map(|c| c.ff).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let cs = [Component::new("a", 10, 5), Component::new("b", 20, 7)];
        assert_eq!(total_lut(&cs), 30);
        assert_eq!(total_ff(&cs), 12);
    }

    #[test]
    fn display_contains_name() {
        assert!(Component::new("decoder", 1, 2)
            .to_string()
            .contains("decoder"));
    }
}
