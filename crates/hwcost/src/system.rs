//! Whole-system aggregation: the core plus the Xilinx peripherals of paper
//! Table II.

use serde::{Deserialize, Serialize};

use crate::boom::BoomConfig;
use crate::component::{total_ff, total_lut, Component};
use crate::ptstore::ptstore_delta;

/// The uncore blocks of the prototype (Table II): MIG DDR3 controller, AXI
/// Ethernet, interconnect, boot ROM, debug. Sized so the whole-system
/// baseline equals Table III (71,633 LUT / 57,151 FF).
pub fn peripherals() -> Vec<Component> {
    vec![
        Component::new("xilinx mig (ddr3)", 8_900, 10_500),
        Component::new("axi ethernet", 3_800, 5_200),
        Component::new("axi interconnect", 2_400, 2_900),
        Component::new("boot rom + uart", 700, 600),
        Component::new("debug module", 466, 624),
    ]
}

/// Aggregated resource cost of one build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemCost {
    /// Core LUTs.
    pub core_lut: u64,
    /// Core FFs.
    pub core_ff: u64,
    /// Whole-system LUTs.
    pub system_lut: u64,
    /// Whole-system FFs.
    pub system_ff: u64,
}

impl SystemCost {
    /// Synthesises (in the model) a build of `cfg`, with or without PTStore.
    pub fn synthesise(cfg: &BoomConfig, with_ptstore: bool) -> Self {
        let mut core = cfg.components();
        if with_ptstore {
            core.extend(ptstore_delta(cfg.pmp_entries));
        }
        let core_lut = total_lut(&core);
        let core_ff = total_ff(&core);
        let periph = peripherals();
        SystemCost {
            core_lut,
            core_ff,
            system_lut: core_lut + total_lut(&periph),
            system_ff: core_ff + total_ff(&periph),
        }
    }

    /// Percentage increase of `self` over `base` in core LUTs.
    pub fn core_lut_overhead_pct(&self, base: &SystemCost) -> f64 {
        (self.core_lut as f64 - base.core_lut as f64) / base.core_lut as f64 * 100.0
    }

    /// Percentage increase of `self` over `base` in core FFs.
    pub fn core_ff_overhead_pct(&self, base: &SystemCost) -> f64 {
        (self.core_ff as f64 - base.core_ff as f64) / base.core_ff as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_system_matches_table3() {
        let cost = SystemCost::synthesise(&BoomConfig::small_boom(), false);
        assert_eq!(cost.core_lut, 55_367);
        assert_eq!(cost.core_ff, 37_327);
        assert_eq!(cost.system_lut, 71_633);
        assert_eq!(cost.system_ff, 57_151);
    }

    #[test]
    fn ptstore_system_close_to_table3() {
        // The paper's with-PTStore *system* numbers include place-and-route
        // variance (their core delta is +508/+96 but the system delta is
        // +448/+156); the model adds the synthesis delta verbatim, so allow
        // a small tolerance at system level and exactness at core level.
        let base = SystemCost::synthesise(&BoomConfig::small_boom(), false);
        let with = SystemCost::synthesise(&BoomConfig::small_boom(), true);
        assert_eq!(with.core_lut, 55_875);
        assert_eq!(with.core_ff, 37_423);
        assert!((with.system_lut as i64 - 72_081).unsigned_abs() < 100);
        assert!((with.system_ff as i64 - 57_307).unsigned_abs() < 100);
        assert!(with.core_lut_overhead_pct(&base) < 0.92);
    }

    #[test]
    fn fpu_would_hide_the_overhead() {
        // §V-A: with the FPU enabled the relative cost shrinks.
        let mut cfg = BoomConfig::small_boom();
        let base_small = SystemCost::synthesise(&cfg, false);
        let with_small = SystemCost::synthesise(&cfg, true);
        cfg.fpu = true;
        let base_fpu = SystemCost::synthesise(&cfg, false);
        let with_fpu = SystemCost::synthesise(&cfg, true);
        assert!(
            with_fpu.core_lut_overhead_pct(&base_fpu)
                < with_small.core_lut_overhead_pct(&base_small)
        );
    }
}
