//! GOOD twin of `shootdown_bad.rs`: every downgrade write reaches a flush
//! on some call-graph path — directly, or transitively through a helper.
//! Must produce zero `shootdown-pairing` findings.

impl Kernel {
    fn unmap_flushes(&mut self, slot: PhysAddr, va: VirtAddr, asid: u16) -> Result<(), KernelError> {
        self.pt_write(slot, Pte::invalid().bits())?;
        self.tlb_flush_page(va, asid);
        Ok(())
    }

    fn write_protect_flushes(
        &mut self,
        slot: PhysAddr,
        flags: PteFlags,
        asid: u16,
    ) -> Result<(), KernelError> {
        let ro = flags.without(PteFlags::W);
        self.pt_write(slot, Pte::leaf(self.ppn, ro).bits())?;
        self.finish_downgrade(asid);
        Ok(())
    }

    fn tagged_flushes_transitively(
        &mut self,
        slot: PhysAddr,
        new: PhysPageNum,
        asid: u16,
    ) -> Result<(), KernelError> {
        // ptstore-lint: hazard(shootdown-pairing) — repoint leaves the old
        // translation live in remote TLBs.
        self.pt_write(slot, Pte::leaf(new, self.flags).bits())?;
        self.finish_downgrade(asid);
        Ok(())
    }

    fn finish_downgrade(&mut self, asid: u16) {
        self.tlb_flush_asid(asid);
    }
}
