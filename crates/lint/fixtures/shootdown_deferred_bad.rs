//! BAD: downgrade writes on the *batched* shootdown path that still never
//! reach any flush API. Queue-adjacent helpers (stats bumps, generation
//! reads) must not be mistaken for the real `queue_flush_page` /
//! `drain_deferred_flushes` sinks — each function here must fire
//! `shootdown-pairing`.

impl Kernel {
    fn unmap_queues_nothing(&mut self, slot: PhysAddr) -> Result<(), KernelError> {
        // Bumping the coalescing stats is not an invalidation.
        self.stats.deferred_pages_coalesced += 1;
        self.pt_write(slot, Pte::invalid().bits())
    }

    fn downgrade_reads_generation_only(
        &mut self,
        slot: PhysAddr,
        flags: PteFlags,
    ) -> Result<(), KernelError> {
        let ro = flags.without(PteFlags::W);
        self.pt_write(slot, Pte::leaf(self.ppn, ro).bits())?;
        // Observing the flush generation does not advance it.
        let _gen = self.flush_generation;
        Ok(())
    }

    fn repoint_pushes_raw_queue(
        &mut self,
        slot: PhysAddr,
        new: PhysPageNum,
        vpn: u64,
        asid: u16,
    ) -> Result<(), KernelError> {
        // ptstore-lint: hazard(shootdown-pairing) — repoint leaves the old
        // translation live in remote TLBs.
        self.pt_write(slot, Pte::leaf(new, self.flags).bits())?;
        // Raw queue surgery bypasses the eager local sfence that
        // `queue_flush_page` performs — not a valid pairing.
        self.pending.push((vpn, asid));
        Ok(())
    }
}
