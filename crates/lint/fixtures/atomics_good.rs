//! GOOD twin of `atomics_bad.rs`: the same coordination rebuilt on
//! `Mutex`/`Condvar` — the turnstile pattern the executor actually uses —
//! plus one justified marker for a genuinely process-wide toggle. Must
//! produce zero `atomics-confinement` findings.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

struct Turnstile {
    state: Mutex<(usize, u64)>,
    turn: Condvar,
}

impl Turnstile {
    fn take_turn(&self) -> usize {
        let mut g = self.state.lock().expect("turnstile");
        let t = g.0;
        g.0 += 1;
        self.turn.notify_all();
        t
    }

    fn publish(&self, e: u64) {
        self.state.lock().expect("turnstile").1 = e;
        self.turn.notify_all();
    }

    fn observe(&self) -> u64 {
        self.state.lock().expect("turnstile").1
    }

    // `std::cmp::Ordering` paths are not atomics; the rule must not fire.
    fn compare(a: u64, b: u64) -> std::cmp::Ordering {
        if a < b {
            std::cmp::Ordering::Less
        } else if a == b {
            std::cmp::Ordering::Equal
        } else {
            std::cmp::Ordering::Greater
        }
    }
}

static PANICKED: AtomicBool = AtomicBool::new(false);

fn note_panic() {
    // ptstore-lint: allow(atomics-confinement) — process-wide one-way
    // panic latch read only after every worker joined; no ordering-
    // dependent behavior can reach the deterministic cycle model.
    PANICKED.store(true, Ordering::SeqCst);
}
