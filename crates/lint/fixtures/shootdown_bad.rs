//! BAD: permission-reducing / invalidating page-table writes whose
//! enclosing functions never reach a TLB flush. Each of the three
//! downgrade shapes (invalidating write, W-stripping function, hazard
//! marker) must fire `shootdown-pairing`.

impl Kernel {
    fn unmap_no_flush(&mut self, slot: PhysAddr) -> Result<(), KernelError> {
        self.pt_write(slot, Pte::invalid().bits())
    }

    fn write_protect_no_flush(&mut self, slot: PhysAddr, flags: PteFlags) -> Result<(), KernelError> {
        let ro = flags.without(PteFlags::W);
        self.pt_write(slot, Pte::leaf(self.ppn, ro).bits())
    }

    fn tagged_no_flush(&mut self, slot: PhysAddr, new: PhysPageNum) -> Result<(), KernelError> {
        // ptstore-lint: hazard(shootdown-pairing) — repoint leaves the old
        // translation live in remote TLBs.
        self.pt_write(slot, Pte::leaf(new, self.flags).bits())
    }

    fn upgrade_is_fine(&mut self, slot: PhysAddr, flags: PteFlags) -> Result<(), KernelError> {
        // Adding permissions needs no shootdown: stale entries are strictly
        // more restrictive and fault their way to a re-walk.
        self.pt_write(slot, Pte::leaf(self.ppn, flags.with(PteFlags::W)).bits())
    }
}
