//! BAD: `#[allow(...)]` attributes with no justification anywhere near
//! them. Each must fire `allow-justification`.

#[allow(dead_code)]
fn orphaned_allow() {}

/// Doc comments do not count as justification — they describe the item,
/// not the exception.
#[allow(clippy::too_many_arguments)]
fn doc_is_not_justification(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8, g: u8, h: u8) {
    let _ = (a, b, c, d, e, f, g, h);
}

#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn multi_lint_unjustified(x: i64) -> u32 {
    x as u32
}
