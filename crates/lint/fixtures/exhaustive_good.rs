//! GOOD twin of `exhaustive_bad.rs`: every variant of the verdict enum is
//! referenced by at least one test. Must produce zero
//! `test-exhaustiveness` findings.

/// How a fixture attack run ended.
pub enum Verdict {
    /// The attack won.
    Succeeded,
    /// A defense stopped it.
    Blocked,
    /// The attack won after an information leak.
    Leaked,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_verdict_is_tested() {
        for v in [Verdict::Succeeded, Verdict::Blocked, Verdict::Leaked] {
            let _ = v;
        }
    }
}
