//! GOOD twin of `channel_bad.rs`: the same operations either routed
//! through the channel accessors or carrying a justified marker. Must
//! produce zero `channel-confinement` findings.

impl Kernel {
    fn poke_pte(&mut self, pa: PhysAddr, v: u64) -> Result<(), KernelError> {
        self.pt_write(pa, v)
    }

    fn peek(&mut self, pa: PhysAddr) -> Result<u64, KernelError> {
        self.mem_read(pa)
    }

    fn sneaky_copy(&mut self, old: PhysPageNum, new: PhysPageNum) {
        self.raw_copy_page(old, new).unwrap();
    }

    fn reprogram(&mut self, region: &SecureRegion) {
        // ptstore-lint: allow(channel-confinement) — M-mode firmware path:
        // the ablation toggle models an SBI call, not a kernel store.
        self.bus.pmp_mut().set_fast_path(true);
        // ptstore-lint: allow(channel-confinement) — firmware PMP programming
        // during the modeled boot handshake (paper §IV-A).
        Bus::install_secure_region(&mut self.bus, region);
    }

    fn fine_calls(&mut self) {
        // Non-raw bus methods are fine anywhere: stats, trace plumbing.
        let _ = self.bus.stats();
        self.bus.set_trace_sink(None);
    }
}
