//! GOOD twin of `allow_bad.rs`: the same attributes, each justified by a
//! plain comment on the line above or trailing on the attribute line.
//! Must produce zero `allow-justification` findings.

// Kept as a fixture anchor; nothing links against this file.
#[allow(dead_code)]
fn justified_above() {}

#[allow(clippy::too_many_arguments)] // test fixture spelling out each field
fn justified_trailing(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8, g: u8, h: u8) {
    let _ = (a, b, c, d, e, f, g, h);
}

// Lossy on purpose: the register is architecturally 32 bits.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn multi_lint_justified(x: i64) -> u32 {
    x as u32
}
