//! GOOD twin of `modelverdict_bad.rs`: the verified, falsified, and
//! truncated outcomes each have a test referencing them. Must produce zero
//! `test-exhaustiveness` findings.

/// The outcome of one bounded model-checking run.
pub enum ModelVerdict {
    /// Every reachable state satisfies every invariant.
    Verified,
    /// A reachable state violates an invariant.
    Falsified,
    /// The state cap was hit before the bound was exhausted.
    Truncated,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defended_search_verifies() {
        assert!(matches!(ModelVerdict::Verified, ModelVerdict::Verified));
    }

    #[test]
    fn ablated_search_falsifies() {
        assert!(matches!(ModelVerdict::Falsified, ModelVerdict::Falsified));
    }

    #[test]
    fn state_cap_truncates() {
        assert!(matches!(ModelVerdict::Truncated, ModelVerdict::Truncated));
    }
}
