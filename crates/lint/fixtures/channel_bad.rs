//! BAD: raw bus access sprinkled through kernel code outside the channel
//! module, with no justification markers. Every raw site below must fire
//! `channel-confinement`.

impl Kernel {
    fn poke_pte(&mut self, pa: PhysAddr, v: u64) -> Result<(), KernelError> {
        let ctx = self.kctx();
        // An ordinary comment is not an allow marker.
        self.bus
            .write::<u64>(pa, v, Channel::Regular, ctx)
            .map_err(KernelError::Access)
    }

    fn peek(&mut self, pa: PhysAddr) -> Result<u64, KernelError> {
        let ctx = self.kctx();
        self.bus.read::<u64>(pa, Channel::Regular, ctx).map_err(KernelError::Access)
    }

    fn sneaky_copy(&mut self, old: PhysPageNum, new: PhysPageNum) {
        self.bus.mem_unchecked().copy_page(old, new).unwrap();
    }

    fn reprogram(&mut self, region: &SecureRegion) {
        self.bus.pmp_mut().set_fast_path(true);
        Bus::install_secure_region(&mut self.bus, region);
    }
}
