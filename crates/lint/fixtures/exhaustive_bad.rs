//! BAD: a security-verdict enum whose variants are only partially
//! exercised by tests. `Verdict::Blocked` and `Verdict::Leaked` must fire
//! `test-exhaustiveness`; `Verdict::Succeeded` is covered.

/// How a fixture attack run ended.
pub enum Verdict {
    /// The attack won.
    Succeeded,
    /// A defense stopped it.
    Blocked,
    /// The attack won after an information leak.
    Leaked,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_success_is_tested() {
        let v = Verdict::Succeeded;
        assert!(matches!(v, Verdict::Succeeded));
    }
}
