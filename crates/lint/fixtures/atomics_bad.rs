//! BAD: raw memory-ordering atomics outside the process-table module,
//! with no justification markers. Every `Ordering::*` load/store below
//! must fire `atomics-confinement` — hand-rolled lock-free coordination
//! anywhere but the generational table makes threaded runs
//! schedule-dependent.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct Turnstile {
    next: AtomicUsize,
    epoch: AtomicU64,
}

impl Turnstile {
    fn take_turn(&self) -> usize {
        // An ordinary comment is not an allow marker.
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    fn publish(&self, e: u64) {
        self.epoch.store(e, Ordering::Release);
    }

    fn observe(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn swap_epoch(&self, e: u64) -> u64 {
        self.epoch.swap(e, Ordering::AcqRel)
    }

    fn reset(&self) {
        self.next.store(0, Ordering::SeqCst);
    }
}
