//! BAD: a model-checker verdict enum whose failure modes are untested.
//! Only the happy path is exercised — `ModelVerdict::Falsified` and
//! `ModelVerdict::Truncated` must each fire `test-exhaustiveness`, because
//! a search outcome nobody tests for is a security result nobody would
//! notice regressing.

/// The outcome of one bounded model-checking run.
pub enum ModelVerdict {
    /// Every reachable state satisfies every invariant.
    Verified,
    /// A reachable state violates an invariant.
    Falsified,
    /// The state cap was hit before the bound was exhausted.
    Truncated,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_the_happy_path_is_tested() {
        let v = ModelVerdict::Verified;
        assert!(matches!(v, ModelVerdict::Verified));
    }
}
