//! GOOD twin of `shootdown_deferred_bad.rs`: every downgrade write pairs
//! with the batched shootdown API — `queue_flush_page` at the write (the
//! local invalidation stays eager; the remote broadcast is deferred), or
//! a forced `drain_deferred_flushes` at the security boundary, directly
//! or transitively. Must produce zero `shootdown-pairing` findings.

impl Kernel {
    fn unmap_queues(&mut self, slot: PhysAddr, va: VirtAddr, asid: u16) -> Result<(), KernelError> {
        self.pt_write(slot, Pte::invalid().bits())?;
        self.queue_flush_page(va, asid);
        Ok(())
    }

    fn downgrade_drains_at_boundary(
        &mut self,
        slot: PhysAddr,
        flags: PteFlags,
    ) -> Result<(), KernelError> {
        let ro = flags.without(PteFlags::W);
        self.pt_write(slot, Pte::leaf(self.ppn, ro).bits())?;
        // Security boundary: the queued invalidations leave with one IPI
        // round before the syscall returns.
        self.drain_deferred_flushes();
        Ok(())
    }

    fn repoint_queues_transitively(
        &mut self,
        slot: PhysAddr,
        new: PhysPageNum,
        va: VirtAddr,
        asid: u16,
    ) -> Result<(), KernelError> {
        // ptstore-lint: hazard(shootdown-pairing) — repoint leaves the old
        // translation live in remote TLBs.
        self.pt_write(slot, Pte::leaf(new, self.flags).bits())?;
        self.finish_batched(va, asid);
        Ok(())
    }

    fn finish_batched(&mut self, va: VirtAddr, asid: u16) {
        self.queue_flush_page(va, asid);
        self.drain_deferred_flushes();
    }
}
