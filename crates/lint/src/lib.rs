//! # ptstore-lint — the paper's LLVM pass, at source level
//!
//! PTStore's software support (§IV-C2) modifies the compiler so that every
//! kernel page-table accessor *must* emit `ld.pt`/`sd.pt` — the secure
//! channel cannot be bypassed by construction. The Rust model used to
//! enforce that contract only by convention; this crate makes it a checked
//! property of the source tree.
//!
//! It is a self-contained static analyzer (a hand-rolled lexer plus a
//! per-crate call graph — the offline build vendors no `syn` and the
//! analyzer deliberately takes no compiler-internals dependency) enforcing
//! five rules:
//!
//! | Rule | Guards |
//! |------|--------|
//! | `channel-confinement` | raw `Bus`/`PhysMem` access in `ptstore-kernel` confined to `src/channel.rs` (§IV-C2 channel discipline) |
//! | `shootdown-pairing`   | downgrade/invalidate `pt_write`s must reach `tlb_flush_page`/`tlb_flush_asid` or the batched `queue_flush_page`/`drain_deferred_flushes` API (SMP TLB coherence) |
//! | `allow-justification` | every `#[allow(...)]` carries a justification comment |
//! | `test-exhaustiveness` | every injector fault class / attack verdict / reject reason / oracle violation / model-check verdict variant is exercised by a test |
//! | `atomics-confinement` | raw `Ordering::*` atomics confined to the generational process table (deterministic threaded execution) |
//!
//! Suppressions are explicit and audited:
//! `// ptstore-lint: allow(<rule>) — <justification>` above (or on) the
//! offending line; `// ptstore-lint: hazard(shootdown-pairing) — <why>`
//! conversely *tags* a PT write as a stale-TLB hazard the lexical
//! heuristics cannot see.
//!
//! Run it with `cargo run -p ptstore-lint -- --format human|json`; output
//! is sorted and byte-deterministic, and the exit status is non-zero when
//! findings exist (wired into `scripts/check.sh` as a CI gate).

#![deny(missing_docs)]

pub mod graph;
pub mod lexer;
pub mod model;
pub mod output;
pub mod rules;
pub mod workspace;

pub use graph::CallGraph;
pub use model::{ParsedFile, SourceFile};
pub use output::{render, Format};
pub use rules::{analyze, Config, Finding};
pub use workspace::{find_root, load_workspace};
