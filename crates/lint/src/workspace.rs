//! Workspace discovery: walks `crates/*` (skipping `third_party/` and
//! build output), reads each package name from its `Cargo.toml`, and loads
//! every `.rs` file under `src/`, `tests/`, and `examples/`, plus the
//! workspace-level `tests/` and `examples/` directories. Traversal order
//! is sorted at every level, so the file list — and with it every finding
//! list — is deterministic.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::model::SourceFile;

/// Loads every lintable source file under the workspace `root`.
///
/// # Errors
/// Propagates I/O failures; a missing `crates/` directory is an error (it
/// means `root` is not the workspace).
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = package_name(&dir.join("Cargo.toml"))
            .unwrap_or_else(|| dir.file_name().unwrap().to_string_lossy().into_owned());
        collect_rs(root, &dir.join("src"), &name, false, &mut files)?;
        collect_rs(root, &dir.join("tests"), &name, true, &mut files)?;
        collect_rs(root, &dir.join("examples"), &name, false, &mut files)?;
    }
    collect_rs(
        root,
        &root.join("tests"),
        "workspace-tests",
        true,
        &mut files,
    )?;
    collect_rs(
        root,
        &root.join("examples"),
        "workspace-examples",
        false,
        &mut files,
    )?;
    Ok(files)
}

/// Finds the workspace root by walking up from `start` until a `Cargo.toml`
/// containing a `[workspace]` section appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// The `name = "..."` of the first `[package]` section of `manifest`.
fn package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let v = rest.trim().trim_matches('"');
                return Some(v.to_string());
            }
        }
    }
    None
}

/// Recursively collects `.rs` files under `dir` (sorted), tagging each with
/// `crate_name`/`is_test`. A missing `dir` is fine (not every crate has
/// `tests/` or `examples/`).
fn collect_rs(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    is_test: bool,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(root, &p, crate_name, is_test, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let text = fs::read_to_string(&p)?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                crate_name: crate_name.to_string(),
                path: rel,
                is_test,
                text,
            });
        }
    }
    Ok(())
}
