//! Finding renderers: human-readable and JSON, both deterministic
//! (findings arrive pre-sorted from [`crate::rules::analyze`]; the JSON is
//! hand-emitted with sorted keys since the workspace vendors no
//! `serde_json`).

use crate::rules::Finding;

/// Output format selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `file:line: [rule] message` lines plus a summary.
    Human,
    /// A JSON array of `{file, line, message, rule}` objects.
    Json,
}

/// Renders `findings` in `format`, including the trailing newline.
pub fn render(findings: &[Finding], format: Format, files_scanned: usize) -> String {
    match format {
        Format::Human => render_human(findings, files_scanned),
        Format::Json => render_json(findings),
    }
}

fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut s = String::new();
    for f in findings {
        s.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    if findings.is_empty() {
        s.push_str(&format!(
            "ptstore-lint: clean ({files_scanned} files scanned)\n"
        ));
    } else {
        s.push_str(&format!(
            "ptstore-lint: {} finding(s) in {} files scanned\n",
            findings.len(),
            files_scanned
        ));
    }
    s
}

fn render_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"file\": {}, \"line\": {}, \"message\": {}, \"rule\": {}}}",
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            json_str(f.rule)
        ));
    }
    if !findings.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

/// Escapes `v` as a JSON string literal.
fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_shape() {
        let findings = vec![Finding {
            file: "a/b.rs".into(),
            line: 7,
            rule: "channel-confinement",
            message: "say \"no\"\n".into(),
        }];
        let j = render(&findings, Format::Json, 1);
        assert!(j.contains("\"file\": \"a/b.rs\""));
        assert!(j.contains("\\\"no\\\"\\n"));
        assert!(j.ends_with("]\n"));
        assert_eq!(render(&[], Format::Json, 0), "[]\n");
    }

    #[test]
    fn human_summary() {
        let h = render(&[], Format::Human, 42);
        assert!(h.contains("clean (42 files"));
    }
}
