//! The per-file source model: functions with body spans, enums with
//! variants, `#[allow]` attributes, `#[cfg(test)]` regions, and
//! `ptstore-lint:` control markers — all extracted from the flat token
//! stream of [`crate::lexer`].

use crate::lexer::{lex, Comment, Lexed, SpannedTok, Tok};

/// One input file handed to the analyzer.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Cargo package name the file belongs to (e.g. `ptstore-kernel`), or a
    /// synthetic name for workspace-level files.
    pub crate_name: String,
    /// Repo-relative path, used in findings.
    pub path: String,
    /// True for integration-test files (`tests/` directories).
    pub is_test: bool,
    /// The file contents.
    pub text: String,
}

/// A function item with its body's token range.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body, *excluding* the outer braces.
    pub body: std::ops::Range<usize>,
    /// True when the function lives inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// An enum definition with its variant names.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// `(variant, line)` pairs in declaration order.
    pub variants: Vec<(String, u32)>,
}

/// One `#[allow(...)]` / `#![allow(...)]` attribute occurrence.
#[derive(Debug, Clone)]
pub struct AllowAttr {
    /// 1-based line of the `#`.
    pub line: u32,
    /// 1-based line of the closing `]`.
    pub end_line: u32,
    /// The lint paths inside the parens, joined verbatim.
    pub lints: String,
}

/// What a `// ptstore-lint: <kind>(<rule>) — justification` marker does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkerKind {
    /// Suppresses a finding of the named rule on the marked line.
    Allow,
    /// Tags the marked line as a shootdown-pairing hazard the lexical
    /// heuristics cannot see (e.g. a leaf repoint with unchanged flags).
    Hazard,
}

/// A parsed control marker.
#[derive(Debug, Clone)]
pub struct Marker {
    /// Marker kind.
    pub kind: MarkerKind,
    /// The rule name in parens.
    pub rule: String,
    /// The first *code* line at or after the marker — the line it governs.
    pub target_line: u32,
    /// 1-based line of the marker comment itself.
    pub line: u32,
    /// True when a non-empty justification follows the rule name.
    pub justified: bool,
}

/// A fully parsed file, ready for the rules.
#[derive(Debug)]
pub struct ParsedFile {
    /// The input it came from.
    pub src: SourceFile,
    /// Code tokens.
    pub toks: Vec<SpannedTok>,
    /// Comments.
    pub comments: Vec<Comment>,
    /// Function items (outermost and nested).
    pub fns: Vec<FnItem>,
    /// Enum definitions.
    pub enums: Vec<EnumItem>,
    /// `#[allow]` attributes.
    pub allows: Vec<AllowAttr>,
    /// Token ranges covered by `#[cfg(test)]` items.
    pub test_spans: Vec<std::ops::Range<usize>>,
    /// `ptstore-lint:` markers.
    pub markers: Vec<Marker>,
}

impl ParsedFile {
    /// Parses `src` (infallible; malformed source degrades to fewer items).
    pub fn parse(src: SourceFile) -> Self {
        let Lexed { toks, comments } = lex(&src.text);
        let test_spans = find_test_spans(&toks);
        let fns = find_fns(&toks, &test_spans);
        let enums = find_enums(&toks);
        let allows = find_allows(&toks);
        let markers = find_markers(&comments, &toks);
        Self {
            src,
            toks,
            comments,
            fns,
            enums,
            allows,
            test_spans,
            markers,
        }
    }

    /// True when token index `i` lies inside a `#[cfg(test)]` region.
    pub fn in_test_span(&self, i: usize) -> bool {
        self.test_spans.iter().any(|r| r.contains(&i))
    }

    /// The `Allow` marker governing `line` for `rule`, if any.
    pub fn allow_marker_for(&self, rule: &str, line: u32) -> Option<&Marker> {
        self.markers.iter().find(|m| {
            m.kind == MarkerKind::Allow && m.rule == rule && m.target_line == line && m.justified
        })
    }
}

/// Finds the matching `}` for the `{` at `open` (token index); returns the
/// index of the closer, or the stream end when unbalanced.
fn match_brace(toks: &[SpannedTok], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Token ranges of items carrying `#[cfg(test)]` (attribute through the
/// matching close brace of the following item).
fn find_test_spans(toks: &[SpannedTok]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = matches!(&toks[i].tok, Tok::Punct('#'))
            && matches!(&toks[i + 1].tok, Tok::Punct('['))
            && matches!(&toks[i + 2].tok, Tok::Ident(s) if s == "cfg")
            && matches!(&toks[i + 3].tok, Tok::Punct('('))
            && matches!(&toks[i + 4].tok, Tok::Ident(s) if s == "test")
            && matches!(&toks[i + 5].tok, Tok::Punct(')'))
            && matches!(&toks[i + 6].tok, Tok::Punct(']'));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then find the item's opening brace.
        let mut j = i + 7;
        while j < toks.len() {
            if matches!(toks[j].tok, Tok::Punct('#'))
                && matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
            {
                // Skip the bracketed attribute.
                let mut depth = 0usize;
                j += 1;
                while j < toks.len() {
                    match toks[j].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
            } else if matches!(toks[j].tok, Tok::Punct('{')) {
                let close = match_brace(toks, j);
                spans.push(i..close + 1);
                i = j; // nested cfg(test) inside is redundant but harmless
                break;
            } else if matches!(toks[j].tok, Tok::Punct(';')) {
                // `#[cfg(test)] mod foo;` — out-of-line test module.
                spans.push(i..j + 1);
                break;
            } else {
                j += 1;
            }
        }
        i += 1;
    }
    spans
}

/// Extracts all `fn` items (including nested ones) with body token ranges.
fn find_fns(toks: &[SpannedTok], test_spans: &[std::ops::Range<usize>]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if matches!(&toks[i].tok, Tok::Ident(s) if s == "fn") {
            if let Tok::Ident(name) = &toks[i + 1].tok {
                // Walk to the body `{`, skipping parenthesised/ bracketed
                // groups (params, where-bounds); `;` first means no body.
                let mut j = i + 2;
                let mut paren = 0i32;
                let mut body = None;
                while j < toks.len() {
                    match toks[j].tok {
                        Tok::Punct('(') | Tok::Punct('[') => paren += 1,
                        Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
                        Tok::Punct('{') if paren == 0 => {
                            body = Some(j);
                            break;
                        }
                        Tok::Punct(';') if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(open) = body {
                    let close = match_brace(toks, open);
                    fns.push(FnItem {
                        name: name.clone(),
                        line: toks[i].line,
                        body: open + 1..close,
                        in_test: test_spans.iter().any(|r| r.contains(&i)),
                    });
                }
            }
        }
        i += 1;
    }
    fns
}

/// Extracts enum definitions and their variant names.
fn find_enums(toks: &[SpannedTok]) -> Vec<EnumItem> {
    let mut enums = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if !matches!(&toks[i].tok, Tok::Ident(s) if s == "enum") {
            i += 1;
            continue;
        }
        let Tok::Ident(name) = &toks[i + 1].tok else {
            i += 1;
            continue;
        };
        // Find the opening brace (skipping generics — `<` … `>` carry no
        // braces in this codebase's enums).
        let mut j = i + 2;
        while j < toks.len() && !matches!(toks[j].tok, Tok::Punct('{') | Tok::Punct(';')) {
            j += 1;
        }
        if j >= toks.len() || matches!(toks[j].tok, Tok::Punct(';')) {
            i += 1;
            continue;
        }
        let close = match_brace(toks, j);
        let mut variants = Vec::new();
        let mut depth = 0i32;
        let mut expect_variant = true;
        let mut k = j;
        while k < close {
            match &toks[k].tok {
                Tok::Punct('{') | Tok::Punct('(') => {
                    depth += 1;
                    k += 1;
                }
                Tok::Punct('}') | Tok::Punct(')') => {
                    depth -= 1;
                    k += 1;
                }
                Tok::Punct(',') if depth == 1 => {
                    expect_variant = true;
                    k += 1;
                }
                Tok::Punct('#') if depth == 1 => {
                    // Skip a variant attribute.
                    let mut bd = 0usize;
                    k += 1;
                    while k < close {
                        match toks[k].tok {
                            Tok::Punct('[') => bd += 1,
                            Tok::Punct(']') => {
                                bd -= 1;
                                if bd == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                Tok::Ident(v) if depth == 1 && expect_variant => {
                    variants.push((v.clone(), toks[k].line));
                    expect_variant = false;
                    k += 1;
                }
                _ => k += 1,
            }
        }
        enums.push(EnumItem {
            name: name.clone(),
            variants,
        });
        i = close;
    }
    enums
}

/// Extracts `#[allow(...)]` / `#![allow(...)]` attributes.
fn find_allows(toks: &[SpannedTok]) -> Vec<AllowAttr> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if !matches!(toks[i].tok, Tok::Punct('#')) {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if matches!(toks[j].tok, Tok::Punct('!')) {
            j += 1;
        }
        if !matches!(toks.get(j).map(|t| &t.tok), Some(Tok::Punct('['))) {
            i += 1;
            continue;
        }
        if !matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Ident(s)) if s == "allow") {
            i += 1;
            continue;
        }
        // Collect the lint paths verbatim until the matching `]`.
        let mut lints = String::new();
        let mut depth = 0usize;
        let mut k = j;
        let mut end_line = toks[i].line;
        while k < toks.len() {
            match &toks[k].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        end_line = toks[k].line;
                        break;
                    }
                }
                Tok::Ident(s) if k > j + 1 => lints.push_str(s),
                Tok::Punct(':') => lints.push(':'),
                Tok::Punct(',') => lints.push_str(", "),
                _ => {}
            }
            k += 1;
        }
        out.push(AllowAttr {
            line: toks[i].line,
            end_line,
            lints,
        });
        i = k + 1;
    }
    out
}

/// Parses `ptstore-lint:` markers out of comments and binds each to the
/// first code line at or after it.
fn find_markers(comments: &[Comment], toks: &[SpannedTok]) -> Vec<Marker> {
    let mut out = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("ptstore-lint:") else {
            continue;
        };
        let rest = c.text[pos + "ptstore-lint:".len()..].trim_start();
        let kind = if rest.starts_with("allow(") {
            MarkerKind::Allow
        } else if rest.starts_with("hazard(") {
            MarkerKind::Hazard
        } else {
            continue;
        };
        let open = rest.find('(').expect("checked by starts_with");
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[open + 1..close].trim().to_string();
        // Justification: anything substantive after the closing paren on the
        // marker line, or the continuation comment lines directly below.
        let mut justification = rest[close + 1..]
            .trim_start_matches([' ', '—', '-', ':'])
            .trim()
            .to_string();
        if justification.len() < 8 {
            for cont in comments {
                if cont.line > c.end_line
                    && cont.line <= c.end_line + 3
                    && !cont.doc
                    && !cont.text.contains("ptstore-lint:")
                {
                    justification.push_str(cont.text.trim());
                }
            }
        }
        // The governed line: first code token on a line >= the marker's end.
        // (A trailing marker on a code line governs that same line.)
        let same_line = toks.iter().any(|t| t.line == c.line);
        let target_line = if same_line {
            c.line
        } else {
            toks.iter()
                .map(|t| t.line)
                .find(|&l| l > c.end_line)
                .unwrap_or(c.end_line)
        };
        out.push(Marker {
            kind,
            rule,
            target_line,
            line: c.line,
            justified: justification.len() >= 8,
        });
    }
    // A marker stack (several markers above one line) all bind to the same
    // target line already; nothing further to do.
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> ParsedFile {
        ParsedFile::parse(SourceFile {
            crate_name: "t".into(),
            path: "t.rs".into(),
            is_test: false,
            text: text.into(),
        })
    }

    #[test]
    fn fn_bodies_and_nesting() {
        let p = parse("fn outer() { fn inner() { a(); } b(); }");
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        assert!(p.fns[0].body.start < p.fns[1].body.start);
        assert!(p.fns[0].body.end >= p.fns[1].body.end);
    }

    #[test]
    fn enum_variants_with_fields_and_attrs() {
        let p = parse(
            "pub enum E { Plain, Tuple(u8, u8), Struct { x: u64, y: u64 }, #[doc = \"d\"] Attr, }",
        );
        assert_eq!(p.enums.len(), 1);
        let vars: Vec<_> = p.enums[0].variants.iter().map(|v| v.0.as_str()).collect();
        assert_eq!(vars, vec!["Plain", "Tuple", "Struct", "Attr"]);
    }

    #[test]
    fn cfg_test_spans_cover_mod() {
        let p = parse("fn real() {} #[cfg(test)] mod tests { fn fake() { x(); } }");
        assert_eq!(p.test_spans.len(), 1);
        assert!(!p.fns[0].in_test);
        assert!(p.fns[1].in_test);
    }

    #[test]
    fn allow_attrs_found() {
        let p = parse("#![allow(clippy::a)] #[allow(dead_code, clippy::b)] fn f() {}");
        assert_eq!(p.allows.len(), 2);
        assert!(p.allows[1].lints.contains("dead_code"));
    }

    #[test]
    fn markers_bind_to_next_code_line() {
        let p = parse(
            "fn f() {\n    // ptstore-lint: allow(channel-confinement) — a solid justification\n    // continuation line.\n    bus.write();\n}",
        );
        assert_eq!(p.markers.len(), 1);
        let m = &p.markers[0];
        assert_eq!(m.kind, MarkerKind::Allow);
        assert_eq!(m.rule, "channel-confinement");
        assert_eq!(m.target_line, 4);
        assert!(m.justified);
        assert!(p.allow_marker_for("channel-confinement", 4).is_some());
    }

    #[test]
    fn unjustified_marker_does_not_suppress() {
        let p = parse("// ptstore-lint: allow(channel-confinement)\nbus.write();");
        assert!(p.allow_marker_for("channel-confinement", 2).is_none());
    }
}
