//! The per-crate function call graph and its reachability query.
//!
//! Resolution is *name-based*: all `fn` items of a crate with the same name
//! collapse into one node, and an identifier followed by `(` inside a body
//! is an edge when it names a known function. This over-approximates
//! (distinct `impl`s sharing a method name merge; a same-named method on a
//! foreign type aliases), which is the safe direction for the
//! shootdown-pairing rule's *must-reach* query — and it is deterministic
//! and order-independent by construction (nodes and edges live in sorted
//! `BTree` collections; see the property tests).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Tok;
use crate::model::ParsedFile;

/// A per-crate call graph over function names.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CallGraph {
    /// Adjacency: caller name → callee names (sorted, deduplicated).
    pub edges: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Builds the graph from every function body in `files` (one crate's
    /// files). Nested functions own their tokens: an inner `fn`'s calls are
    /// not attributed to the enclosing function.
    pub fn build<'a>(files: impl IntoIterator<Item = &'a ParsedFile>) -> Self {
        Self::build_with_sinks(files, &[])
    }

    /// Like [`CallGraph::build`], but also treats each name in `sinks` as a
    /// known (leaf) node even when no scanned file defines it — for query
    /// targets that live in another crate, such as TLB-flush helpers.
    pub fn build_with_sinks<'a>(
        files: impl IntoIterator<Item = &'a ParsedFile>,
        sinks: &[&str],
    ) -> Self {
        let files: Vec<&ParsedFile> = files.into_iter().collect();
        // Known function names across the crate (test fns included — the
        // rules decide scope, the graph just records structure).
        let known: BTreeSet<String> = files
            .iter()
            .flat_map(|f| f.fns.iter().map(|g| g.name.clone()))
            .chain(sinks.iter().map(|s| (*s).to_string()))
            .collect();
        let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for f in &files {
            for (fi, item) in f.fns.iter().enumerate() {
                let callees = edges.entry(item.name.clone()).or_default();
                let mut i = item.body.start;
                while i < item.body.end {
                    // Skip token ranges of functions nested inside this one.
                    if let Some(inner) = f.fns.iter().skip(fi + 1).find(|g| {
                        g.body.start > item.body.start
                            && g.body.end <= item.body.end
                            && g.body.contains(&i)
                    }) {
                        i = inner.body.end;
                        continue;
                    }
                    if let Tok::Ident(name) = &f.toks[i].tok {
                        if known.contains(name)
                            && matches!(f.toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                        {
                            callees.insert(name.clone());
                        }
                    }
                    i += 1;
                }
            }
        }
        // Every known function gets a node even with no outgoing edges.
        for name in known {
            edges.entry(name).or_default();
        }
        Self { edges }
    }

    /// The set of functions reachable from `from` (inclusive of `from`
    /// itself when it is a known node).
    pub fn reachable(&self, from: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        if !self.edges.contains_key(from) {
            return seen;
        }
        let mut stack = vec![from.to_string()];
        while let Some(n) = stack.pop() {
            if !seen.insert(n.clone()) {
                continue;
            }
            if let Some(cs) = self.edges.get(&n) {
                for c in cs {
                    if !seen.contains(c) {
                        stack.push(c.clone());
                    }
                }
            }
        }
        seen
    }

    /// True when any of `targets` is reachable from `from`.
    pub fn reaches_any(&self, from: &str, targets: &[&str]) -> bool {
        let r = self.reachable(from);
        targets.iter().any(|t| r.contains(*t))
    }
}
