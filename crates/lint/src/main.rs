//! The `ptstore-lint` binary: lints the workspace sources and exits
//! non-zero on findings. See the library docs for the rule set.

use std::path::PathBuf;
use std::process::ExitCode;

use ptstore_lint::{analyze, find_root, load_workspace, render, Config, Format};

const USAGE: &str = "usage: ptstore-lint [--format human|json] [--root <workspace-dir>]

Lints the PTStore workspace for secure-access discipline:
  channel-confinement   raw Bus/PhysMem access only in the channel module
  shootdown-pairing     downgrading PT writes must reach a TLB flush
  allow-justification   every #[allow] needs a justification comment
  test-exhaustiveness   verdict/fault enums fully covered by tests
  atomics-confinement   raw Ordering::* atomics only in the process table

Exit status: 0 clean, 1 findings, 2 usage/I-O error.";

fn main() -> ExitCode {
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "ptstore-lint: --format takes `human` or `json`, got {:?}\n\n{USAGE}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ptstore-lint: --root needs a path\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ptstore-lint: unknown argument {other:?}\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| std::env::current_dir().ok().and_then(|d| find_root(&d))) {
        Some(r) => r,
        None => {
            eprintln!("ptstore-lint: no workspace root found (try --root)");
            return ExitCode::from(2);
        }
    };
    let files = match load_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "ptstore-lint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let n_files = files.len();
    let findings = analyze(files, &Config::default());
    print!("{}", render(&findings, format, n_files));
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
