//! The five workspace rules. Each mirrors one guarantee of the paper's
//! hardware/compiler contract; see `DESIGN.md` for the mapping.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::CallGraph;
use crate::lexer::Tok;
use crate::model::{MarkerKind, ParsedFile, SourceFile};

/// Rule identifier: raw bus/physmem access outside the channel module.
pub const RULE_CHANNEL: &str = "channel-confinement";
/// Rule identifier: downgrading PT writes must reach a TLB flush.
pub const RULE_SHOOTDOWN: &str = "shootdown-pairing";
/// Rule identifier: `#[allow]` attributes need a justification comment.
pub const RULE_ALLOW: &str = "allow-justification";
/// Rule identifier: security-verdict enums need full test coverage.
pub const RULE_EXHAUSTIVE: &str = "test-exhaustiveness";
/// Rule identifier: raw memory-ordering atomics only in the process table.
pub const RULE_ATOMICS: &str = "atomics-confinement";

/// One reported problem.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// Analyzer configuration. [`Config::default`] encodes the real workspace
/// contract; tests substitute narrower configs for fixtures.
#[derive(Debug, Clone)]
pub struct Config {
    /// The crate whose page-table discipline rules 1 and 2 police.
    pub kernel_crate: String,
    /// File suffixes (within the kernel crate) where raw access is legal.
    pub channel_modules: Vec<String>,
    /// Receiver identifiers whose `read`/`write`-like methods are raw.
    pub bus_receivers: Vec<String>,
    /// Methods on a bus receiver that constitute raw access.
    pub bus_methods: Vec<String>,
    /// Identifiers that are raw on their own, any receiver.
    pub raw_idents: Vec<String>,
    /// The channel accessor whose downgrade writes rule 2 pairs with.
    pub pt_write_fn: String,
    /// Functions that satisfy the pairing when reachable.
    pub flush_fns: Vec<String>,
    /// Exhaustiveness targets: enum name → crate expected to define it.
    pub exhaustive_enums: Vec<(String, String)>,
    /// Path suffixes (workspace-wide) where raw memory-ordering atomics
    /// are legal — the generational process table and nothing else.
    pub atomics_modules: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            kernel_crate: "ptstore-kernel".into(),
            channel_modules: vec!["src/channel.rs".into()],
            bus_receivers: vec!["bus".into(), "Bus".into()],
            bus_methods: vec![
                "read".into(),
                "write".into(),
                "install_secure_region".into(),
                "update_secure_region".into(),
            ],
            raw_idents: vec!["mem_unchecked".into(), "pmp_mut".into()],
            pt_write_fn: "pt_write".into(),
            flush_fns: vec![
                "tlb_flush_page".into(),
                "tlb_flush_asid".into(),
                // Batched-shootdown API: queueing defers only the remote
                // broadcast (the local invalidation stays eager), and every
                // security boundary force-drains, so a downgrade reaching
                // either side of the deferred path is coherent.
                "queue_flush_page".into(),
                "drain_deferred_flushes".into(),
                // Drain-policy entry points: a watermark trigger or an
                // ASID-recycle guard both end in `drain_deferred_flushes`,
                // so reaching them satisfies the pairing too.
                "maybe_watermark_drain".into(),
                "drain_on_asid_recycle".into(),
            ],
            exhaustive_enums: vec![
                ("FaultClass".into(), "ptstore-trace".into()),
                ("AttackOutcome".into(), "ptstore-attacks".into()),
                ("BlockedBy".into(), "ptstore-attacks".into()),
                ("Violation".into(), "ptstore-fault".into()),
                ("PagingScheme".into(), "ptstore-core".into()),
                ("PageSize".into(), "ptstore-core".into()),
                ("DrainPolicy".into(), "ptstore-kernel".into()),
                // The model checker's verdict: a search outcome nobody
                // tests for (e.g. the Truncated state-cap path) is a
                // security result nobody would notice regressing.
                ("ModelVerdict".into(), "ptstore-modelcheck".into()),
            ],
            atomics_modules: vec!["crates/kernel/src/process.rs".into()],
        }
    }
}

/// Parses `files` and runs every rule; returns findings sorted by
/// `(file, line, rule, message)` — the binary's output order.
pub fn analyze(files: Vec<SourceFile>, cfg: &Config) -> Vec<Finding> {
    let parsed: Vec<ParsedFile> = files.into_iter().map(ParsedFile::parse).collect();
    let mut findings = Vec::new();
    findings.extend(rule_channel_confinement(&parsed, cfg));
    findings.extend(rule_shootdown_pairing(&parsed, cfg));
    findings.extend(rule_allow_justification(&parsed));
    findings.extend(rule_test_exhaustiveness(&parsed, cfg));
    findings.extend(rule_atomics_confinement(&parsed, cfg));
    findings.sort();
    findings.dedup();
    findings
}

/// Rule 1 — **channel confinement** (§IV-C2's LLVM pass, at source level).
///
/// Inside the kernel crate, raw `Bus`/`PhysMem` access — `bus.read`,
/// `bus.write`, `mem_unchecked`, `pmp_mut`, and the PMP-programming
/// firmware entry points — may appear only in the allowlisted channel
/// module(s). Anywhere else requires a justified
/// `// ptstore-lint: allow(channel-confinement) — why` marker.
fn rule_channel_confinement(parsed: &[ParsedFile], cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in parsed {
        if f.src.crate_name != cfg.kernel_crate || f.src.is_test {
            continue;
        }
        if cfg.channel_modules.iter().any(|m| f.src.path.ends_with(m)) {
            continue;
        }
        for i in 0..f.toks.len() {
            let Tok::Ident(name) = &f.toks[i].tok else {
                continue;
            };
            let hit = if cfg.raw_idents.contains(name) {
                Some(format!("raw physical-memory accessor `{name}`"))
            } else if cfg.bus_receivers.contains(name) {
                // `bus.read`, `bus.write::<..>`, `Bus::write`, ...
                let (sep_len, method) = match f.toks.get(i + 1).map(|t| &t.tok) {
                    Some(Tok::Punct('.')) => (2, f.toks.get(i + 2)),
                    Some(Tok::Punct(':'))
                        if matches!(f.toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(':'))) =>
                    {
                        (3, f.toks.get(i + 3))
                    }
                    _ => (0, None),
                };
                let _ = sep_len;
                match method.map(|t| &t.tok) {
                    Some(Tok::Ident(m)) if cfg.bus_methods.contains(m) => {
                        Some(format!("raw bus access `{name}`…`{m}`"))
                    }
                    _ => None,
                }
            } else {
                None
            };
            let Some(what) = hit else { continue };
            if f.in_test_span(i) {
                continue;
            }
            let line = f.toks[i].line;
            if f.allow_marker_for(RULE_CHANNEL, line).is_some() {
                continue;
            }
            out.push(Finding {
                file: f.src.path.clone(),
                line,
                rule: RULE_CHANNEL,
                message: format!(
                    "{what} outside the channel module; route it through \
                     `pt_read`/`pt_write`/the channel accessors, or add a justified \
                     `ptstore-lint: allow({RULE_CHANNEL})` marker"
                ),
            });
        }
    }
    out
}

/// The memory-ordering variants of `std::sync::atomic::Ordering`. Listing
/// them (rather than matching any `Ordering::*` path) keeps
/// `std::cmp::Ordering::Less`/`Equal`/`Greater` out of the rule.
const MEM_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Rule 5 — **atomics confinement** (the threaded-execution contract).
///
/// Deterministic threaded execution rests on exactly one lock-free
/// structure: the generational process table, whose publish/retire
/// orderings are argued in its module docs. Raw memory-ordering atomics
/// (`Ordering::Relaxed`/`Acquire`/`Release`/`AcqRel`/`SeqCst`) anywhere
/// else — executor, mailboxes, bench pool — would reintroduce
/// schedule-dependent behavior the differential goldens cannot catch, so
/// outside the allowlisted module(s) they require a justified
/// `// ptstore-lint: allow(atomics-confinement) — why` marker.
/// Synchronise with `Mutex`/`Condvar` instead; determinism comes from the
/// logical-time turnstile, not from atomic cleverness.
fn rule_atomics_confinement(parsed: &[ParsedFile], cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in parsed {
        if f.src.is_test {
            continue;
        }
        if cfg.atomics_modules.iter().any(|m| f.src.path.ends_with(m)) {
            continue;
        }
        for i in 0..f.toks.len().saturating_sub(3) {
            let window = &f.toks[i..i + 4];
            let Tok::Ident(head) = &window[0].tok else {
                continue;
            };
            if head != "Ordering" {
                continue;
            }
            if !MEM_ORDERINGS.iter().any(|v| path_is(window, "Ordering", v)) {
                continue;
            }
            if f.in_test_span(i) {
                continue;
            }
            let line = window[0].line;
            if f.allow_marker_for(RULE_ATOMICS, line).is_some() {
                continue;
            }
            let Tok::Ident(variant) = &window[3].tok else {
                continue;
            };
            out.push(Finding {
                file: f.src.path.clone(),
                line,
                rule: RULE_ATOMICS,
                message: format!(
                    "raw atomic `Ordering::{variant}` outside the process-table module; \
                     use `Mutex`/`Condvar` (the logical-time turnstile keeps threaded runs \
                     deterministic), or add a justified \
                     `ptstore-lint: allow({RULE_ATOMICS})` marker"
                ),
            });
        }
    }
    out
}

/// Rule 2 — **shootdown pairing** (TLB coherence; the SMP hazard class).
///
/// A kernel function containing a *permission-reducing or invalidating*
/// `pt_write` — one whose arguments invoke `Pte::invalid`, whose enclosing
/// function strips `PteFlags::W` via `without`, or one tagged with a
/// `ptstore-lint: hazard(shootdown-pairing)` marker — must reach one of
/// the configured flush functions on some call-graph path: the eager
/// `tlb_flush_page`/`tlb_flush_asid`, or the batched `queue_flush_page`/
/// `drain_deferred_flushes` pair (queueing keeps the local invalidation
/// eager and defers only the remote broadcast).
fn rule_shootdown_pairing(parsed: &[ParsedFile], cfg: &Config) -> Vec<Finding> {
    let kernel_files: Vec<&ParsedFile> = parsed
        .iter()
        .filter(|f| f.src.crate_name == cfg.kernel_crate && !f.src.is_test)
        .collect();
    if kernel_files.is_empty() {
        return Vec::new();
    }
    let flush: Vec<&str> = cfg.flush_fns.iter().map(String::as_str).collect();
    // Flush helpers are sinks: calls to them count even if their definition
    // lives outside the scanned files.
    let graph = CallGraph::build_with_sinks(kernel_files.iter().copied(), &flush);
    let mut out = Vec::new();
    for f in &kernel_files {
        for item in &f.fns {
            if item.in_test {
                continue;
            }
            // `without(..PteFlags..W..)` anywhere in the body marks the
            // function as downgrade-shaped.
            let body = &f.toks[item.body.clone()];
            let strips_w = body.windows(2).any(|w| {
                matches!(&w[0].tok, Tok::Ident(s) if s == "without")
                    && matches!(w[1].tok, Tok::Punct('('))
            }) && body.windows(4).any(|w| path_is(w, "PteFlags", "W"));
            for i in item.body.clone() {
                if !matches!(&f.toks[i].tok, Tok::Ident(s) if *s == cfg.pt_write_fn) {
                    continue;
                }
                if !matches!(f.toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
                    continue;
                }
                let line = f.toks[i].line;
                let args_end = matching_paren(&f.toks, i + 1);
                let invalidating = f.toks[i + 1..args_end]
                    .windows(4)
                    .any(|w| path_is(w, "Pte", "invalid"));
                let tagged = f.markers.iter().any(|m| {
                    m.kind == MarkerKind::Hazard
                        && m.rule == RULE_SHOOTDOWN
                        && m.target_line == line
                });
                if !(invalidating || strips_w || tagged) {
                    continue;
                }
                if graph.reaches_any(&item.name, &flush) {
                    continue;
                }
                if f.allow_marker_for(RULE_SHOOTDOWN, line).is_some() {
                    continue;
                }
                out.push(Finding {
                    file: f.src.path.clone(),
                    line,
                    rule: RULE_SHOOTDOWN,
                    message: format!(
                        "`{}` performs a permission-reducing/invalidating `{}` but reaches \
                         none of [{}] on any call-graph path — stale TLB hazard",
                        item.name,
                        cfg.pt_write_fn,
                        cfg.flush_fns.join(", ")
                    ),
                });
            }
        }
    }
    out
}

/// True when a 4-token window spells `head::tail`.
fn path_is(w: &[crate::lexer::SpannedTok], head: &str, tail: &str) -> bool {
    matches!(
        (&w[0].tok, &w[1].tok, &w[2].tok, &w[3].tok),
        (Tok::Ident(h), Tok::Punct(':'), Tok::Punct(':'), Tok::Ident(t))
            if h == head && t == tail
    )
}

/// Index of the `)` matching the `(` at `open` (or stream end).
fn matching_paren(toks: &[crate::lexer::SpannedTok], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len()
}

/// Rule 3 — **allow-attribute hygiene**.
///
/// Every `#[allow(...)]`/`#![allow(...)]` in the workspace must carry a
/// justification: a non-doc `//` comment trailing on the attribute's line
/// or sitting on the line directly above it.
fn rule_allow_justification(parsed: &[ParsedFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in parsed {
        for a in &f.allows {
            let justified = f.comments.iter().any(|c| {
                !c.doc
                    && !c.text.trim().is_empty()
                    && (c.end_line == a.end_line || c.end_line + 1 == a.line)
            });
            if justified {
                continue;
            }
            out.push(Finding {
                file: f.src.path.clone(),
                line: a.line,
                rule: RULE_ALLOW,
                message: format!(
                    "`#[allow({})]` without a justification comment (add `// why` on the \
                     attribute line or the line above)",
                    a.lints
                ),
            });
        }
    }
    out
}

/// Rule 4 — **exhaustiveness**: every variant of the configured
/// security-verdict enums (injector fault classes, attack verdicts, reject
/// reasons, oracle violations) must be referenced as `Enum::Variant` by at
/// least one test.
fn rule_test_exhaustiveness(parsed: &[ParsedFile], cfg: &Config) -> Vec<Finding> {
    // Collect enum definitions from non-test code of the expected crates.
    let mut defs: BTreeMap<&str, (&ParsedFile, &crate::model::EnumItem)> = BTreeMap::new();
    for f in parsed {
        if f.src.is_test {
            continue;
        }
        for e in &f.enums {
            for (name, krate) in &cfg.exhaustive_enums {
                if e.name == *name && f.src.crate_name == *krate {
                    defs.entry(name.as_str()).or_insert((f, e));
                }
            }
        }
    }
    // Collect `Enum::Variant` references appearing in test code anywhere.
    let mut test_refs: BTreeSet<(String, String)> = BTreeSet::new();
    for f in parsed {
        for i in 0..f.toks.len().saturating_sub(3) {
            if !(f.src.is_test || f.in_test_span(i)) {
                continue;
            }
            if let (Tok::Ident(e), Tok::Punct(':'), Tok::Punct(':'), Tok::Ident(v)) = (
                &f.toks[i].tok,
                &f.toks[i + 1].tok,
                &f.toks[i + 2].tok,
                &f.toks[i + 3].tok,
            ) {
                test_refs.insert((e.clone(), v.clone()));
            }
        }
    }
    let mut out = Vec::new();
    for (name, krate) in &cfg.exhaustive_enums {
        let Some((f, e)) = defs.get(name.as_str()) else {
            out.push(Finding {
                file: format!("crates ({krate})"),
                line: 0,
                rule: RULE_EXHAUSTIVE,
                message: format!(
                    "exhaustiveness target enum `{name}` not found in crate `{krate}` \
                     (moved or renamed? update the lint config)"
                ),
            });
            continue;
        };
        for (variant, line) in &e.variants {
            if test_refs.contains(&(name.clone(), variant.clone())) {
                continue;
            }
            out.push(Finding {
                file: f.src.path.clone(),
                line: *line,
                rule: RULE_EXHAUSTIVE,
                message: format!(
                    "`{name}::{variant}` is referenced by no test — every injector fault \
                     site / verdict / reject reason needs at least one test exercising it"
                ),
            });
        }
    }
    out
}
