//! A minimal Rust lexer: just enough fidelity to walk real source without
//! being fooled by strings, char literals, lifetimes, or nested comments.
//!
//! The build environment is offline, so `syn` is not available; this lexer
//! (plus the item scanner in [`crate::model`]) is the crate's entire
//! front end. It intentionally produces a *flat* token stream — the rules
//! work on token sequences and brace matching, never on a full AST.

/// One lexed token (comments are reported separately, see [`Comment`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// A string/char/numeric literal (contents dropped — the rules never
    /// look inside literals, which is exactly the point of lexing first).
    Literal,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// A comment (line or block) with its text and position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on.
    pub end_line: u32,
    /// Comment text without the `//` / `/*` framing.
    pub text: String,
    /// True for `///` and `//!` doc comments (not justification material).
    pub doc: bool,
}

/// The output of [`lex`]: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<SpannedTok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Unterminated constructs are
/// tolerated (the remainder is swallowed) — the linter must never panic on
/// the code it audits.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start + 2..i].iter().collect();
                let doc = text.starts_with('/') || text.starts_with('!');
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text,
                    doc,
                });
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                let text: String = b[start..end].iter().collect();
                let doc = text.starts_with('*') || text.starts_with('!');
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text,
                    doc,
                });
            }
            '"' => {
                i = skip_string(&b, i, &mut line);
                out.toks.push(SpannedTok {
                    tok: Tok::Literal,
                    line,
                });
            }
            'r' | 'b' if is_raw_or_byte_string(&b, i) => {
                let start_line = line;
                i = skip_raw_or_byte_string(&b, i, &mut line);
                out.toks.push(SpannedTok {
                    tok: Tok::Literal,
                    line: start_line,
                });
            }
            '\'' => {
                // Lifetime (or loop label) vs char literal.
                if is_lifetime(&b, i) {
                    // Consume the quote and the lifetime ident.
                    i += 1;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                } else {
                    i = skip_char_literal(&b, i, &mut line);
                    out.toks.push(SpannedTok {
                        tok: Tok::Literal,
                        line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.toks.push(SpannedTok {
                    tok: Tok::Ident(b[start..i].iter().collect()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.') {
                    // `0..10` — don't swallow the range operator.
                    if b[i] == '.' && i + 1 < b.len() && b[i + 1] == '.' {
                        break;
                    }
                    i += 1;
                }
                out.toks.push(SpannedTok {
                    tok: Tok::Literal,
                    line,
                });
            }
            c => {
                out.toks.push(SpannedTok {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// True when position `i` (at `r` or `b`) starts a raw/byte string form:
/// `r"`, `r#`, `b"`, `br"`, `br#`, `b'`.
fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let c = b[i];
    let n1 = b.get(i + 1).copied();
    let n2 = b.get(i + 2).copied();
    match c {
        'r' => matches!(n1, Some('"') | Some('#')) && raw_has_quote(b, i + 1),
        'b' => match n1 {
            Some('"') | Some('\'') => true,
            Some('r') => matches!(n2, Some('"') | Some('#')) && raw_has_quote(b, i + 2),
            _ => false,
        },
        _ => false,
    }
}

/// True when, starting at `i` over zero or more `#`, a `"` follows —
/// distinguishes `r#"…"#` from the raw identifier `r#match`.
fn raw_has_quote(b: &[char], mut i: usize) -> bool {
    while b.get(i) == Some(&'#') {
        i += 1;
    }
    b.get(i) == Some(&'"')
}

/// True when the `'` at `i` begins a lifetime/label, not a char literal.
fn is_lifetime(b: &[char], i: usize) -> bool {
    match b.get(i + 1) {
        Some(c) if c.is_alphabetic() || *c == '_' => b.get(i + 2) != Some(&'\''),
        _ => false,
    }
}

/// Skips a normal `"…"` string starting at `i`; returns the index after it.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw/byte string form starting at `i`; returns the index after it.
fn skip_raw_or_byte_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    // Consume prefix letters (`r`, `b`, `br`).
    while i < b.len() && (b[i] == 'r' || b[i] == 'b') {
        i += 1;
    }
    if b.get(i) == Some(&'\'') {
        return skip_char_literal(b, i, line);
    }
    let mut hashes = 0usize;
    while b.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&'"') {
        return i;
    }
    if hashes == 0 {
        return skip_string(b, i, line);
    }
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Skips a `'…'` char/byte-char literal starting at the quote.
fn skip_char_literal(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // bus.write in a comment
            fn f() { let s = "bus.write"; let r = r#"mem_unchecked"#; }
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"fn".into()) && ids.contains(&"f".into()));
        assert!(!ids.contains(&"bus".into()) && !ids.contains(&"mem_unchecked".into()));
        assert_eq!(lex(src).comments.len(), 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ids = idents("fn g<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"str".into()));
    }

    #[test]
    fn char_literal_with_brace_does_not_derail_depth() {
        let lexed = lex("fn h() { let c = '{'; }");
        let braces: i32 = lexed
            .toks
            .iter()
            .map(|t| match t.tok {
                Tok::Punct('{') => 1,
                Tok::Punct('}') => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(braces, 0);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still */ fn k() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
        assert!(idents("/* /* */ */ fn k() {}").contains(&"k".into()));
    }
}
