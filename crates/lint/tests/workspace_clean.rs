//! The real workspace must lint clean — the acceptance gate `check.sh`
//! enforces, asserted here so `cargo test` alone catches regressions.

use ptstore_lint::workspace::load_workspace;
use ptstore_lint::{analyze, Config};
use std::path::Path;

#[test]
fn real_workspace_has_no_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let files = load_workspace(&root).expect("workspace loads");
    assert!(
        files.len() > 100,
        "expected the full workspace, got {} files",
        files.len()
    );
    let findings = analyze(files, &Config::default());
    assert!(
        findings.is_empty(),
        "workspace must satisfy the secure-access discipline:\n{:#?}",
        findings
    );
}
