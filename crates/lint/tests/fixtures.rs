//! Fixture suite: every rule fires on a known-bad snippet and stays quiet
//! on its corrected twin. The snippets live in `fixtures/` as real `.rs`
//! files (readable, diffable) and are fed to [`analyze`] as synthetic
//! kernel-crate sources.

use ptstore_lint::rules::{
    RULE_ALLOW, RULE_ATOMICS, RULE_CHANNEL, RULE_EXHAUSTIVE, RULE_SHOOTDOWN,
};
use ptstore_lint::{analyze, Config, Finding, SourceFile};

/// Wraps fixture text as a non-test file inside the policed kernel crate.
fn kernel_file(path: &str, text: &str) -> SourceFile {
    SourceFile {
        crate_name: "ptstore-kernel".into(),
        path: path.into(),
        is_test: false,
        text: text.into(),
    }
}

fn findings_for(rule: &str, files: Vec<SourceFile>, cfg: &Config) -> Vec<Finding> {
    analyze(files, cfg)
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

#[test]
fn channel_rule_fires_on_bad_and_passes_good() {
    let cfg = Config::default();
    let bad = findings_for(
        RULE_CHANNEL,
        vec![kernel_file(
            "src/bad.rs",
            include_str!("../fixtures/channel_bad.rs"),
        )],
        &cfg,
    );
    assert_eq!(bad.len(), 5, "five raw sites: {bad:#?}");
    assert!(bad.iter().any(|f| f.message.contains("mem_unchecked")));
    assert!(bad.iter().any(|f| f.message.contains("pmp_mut")));
    assert!(bad
        .iter()
        .any(|f| f.message.contains("install_secure_region")));

    let good = findings_for(
        RULE_CHANNEL,
        vec![kernel_file(
            "src/good.rs",
            include_str!("../fixtures/channel_good.rs"),
        )],
        &cfg,
    );
    assert!(good.is_empty(), "corrected twin must be clean: {good:#?}");
}

#[test]
fn atomics_rule_fires_on_bad_and_passes_good() {
    let cfg = Config::default();
    let bad = findings_for(
        RULE_ATOMICS,
        vec![kernel_file(
            "src/bad.rs",
            include_str!("../fixtures/atomics_bad.rs"),
        )],
        &cfg,
    );
    assert_eq!(bad.len(), 5, "five raw ordering sites: {bad:#?}");
    for variant in ["Relaxed", "Release", "Acquire", "AcqRel", "SeqCst"] {
        assert!(
            bad.iter().any(|f| f.message.contains(variant)),
            "missing Ordering::{variant}: {bad:#?}"
        );
    }

    let good = findings_for(
        RULE_ATOMICS,
        vec![kernel_file(
            "src/good.rs",
            include_str!("../fixtures/atomics_good.rs"),
        )],
        &cfg,
    );
    assert!(good.is_empty(), "corrected twin must be clean: {good:#?}");
}

#[test]
fn atomics_rule_skips_the_process_table_and_tests() {
    let cfg = Config::default();
    // The same bad text is legal inside the allowlisted table module.
    let inside = findings_for(
        RULE_ATOMICS,
        vec![kernel_file(
            "crates/kernel/src/process.rs",
            include_str!("../fixtures/atomics_bad.rs"),
        )],
        &cfg,
    );
    assert!(inside.is_empty(), "{inside:#?}");
    // ...and in test files, which may coordinate however they like.
    let mut test_file = kernel_file("tests/race.rs", include_str!("../fixtures/atomics_bad.rs"));
    test_file.is_test = true;
    assert!(findings_for(RULE_ATOMICS, vec![test_file], &cfg).is_empty());
}

#[test]
fn atomics_rule_polices_every_crate() {
    // Unlike channel-confinement, the rule is workspace-wide: a bench or
    // executor crate sneaking in atomics is exactly the regression it
    // exists to catch.
    let cfg = Config::default();
    let other = SourceFile {
        crate_name: "ptstore-bench".into(),
        path: "crates/bench/src/pool.rs".into(),
        is_test: false,
        text: include_str!("../fixtures/atomics_bad.rs").into(),
    };
    let found = findings_for(RULE_ATOMICS, vec![other], &cfg);
    assert_eq!(found.len(), 5, "{found:#?}");
}

#[test]
fn channel_rule_skips_the_channel_module_itself() {
    // The same bad text is legal inside the allowlisted channel module.
    let cfg = Config::default();
    let inside = findings_for(
        RULE_CHANNEL,
        vec![kernel_file(
            "src/channel.rs",
            include_str!("../fixtures/channel_bad.rs"),
        )],
        &cfg,
    );
    assert!(inside.is_empty(), "{inside:#?}");
}

#[test]
fn channel_rule_ignores_other_crates() {
    let cfg = Config::default();
    let other = SourceFile {
        crate_name: "ptstore-mem".into(),
        path: "src/bus.rs".into(),
        is_test: false,
        text: include_str!("../fixtures/channel_bad.rs").into(),
    };
    assert!(findings_for(RULE_CHANNEL, vec![other], &cfg).is_empty());
}

#[test]
fn shootdown_rule_fires_on_bad_and_passes_good() {
    let cfg = Config::default();
    let bad = findings_for(
        RULE_SHOOTDOWN,
        vec![kernel_file(
            "src/bad.rs",
            include_str!("../fixtures/shootdown_bad.rs"),
        )],
        &cfg,
    );
    let names: Vec<&str> = bad
        .iter()
        .map(|f| {
            f.message
                .split('`')
                .nth(1)
                .expect("message names the function")
        })
        .collect();
    assert_eq!(
        names,
        [
            "unmap_no_flush",
            "write_protect_no_flush",
            "tagged_no_flush"
        ],
        "all three downgrade shapes, and only them: {bad:#?}"
    );

    let good = findings_for(
        RULE_SHOOTDOWN,
        vec![kernel_file(
            "src/good.rs",
            include_str!("../fixtures/shootdown_good.rs"),
        )],
        &cfg,
    );
    assert!(
        good.is_empty(),
        "direct and transitive flushes both satisfy pairing: {good:#?}"
    );
}

#[test]
fn shootdown_rule_accepts_the_batched_drain_api() {
    let cfg = Config::default();
    let bad = findings_for(
        RULE_SHOOTDOWN,
        vec![kernel_file(
            "src/bad.rs",
            include_str!("../fixtures/shootdown_deferred_bad.rs"),
        )],
        &cfg,
    );
    let names: Vec<&str> = bad
        .iter()
        .map(|f| {
            f.message
                .split('`')
                .nth(1)
                .expect("message names the function")
        })
        .collect();
    assert_eq!(
        names,
        [
            "unmap_queues_nothing",
            "downgrade_reads_generation_only",
            "repoint_pushes_raw_queue"
        ],
        "queue-adjacent bookkeeping is not a flush: {bad:#?}"
    );

    let good = findings_for(
        RULE_SHOOTDOWN,
        vec![kernel_file(
            "src/good.rs",
            include_str!("../fixtures/shootdown_deferred_good.rs"),
        )],
        &cfg,
    );
    assert!(
        good.is_empty(),
        "queue_flush_page / drain_deferred_flushes satisfy pairing: {good:#?}"
    );
}

#[test]
fn allow_rule_fires_on_bad_and_passes_good() {
    let cfg = Config::default();
    // Rule 3 is workspace-wide: use a non-kernel crate to prove it.
    let wrap = |path: &str, text: &str| SourceFile {
        crate_name: "ptstore-isa".into(),
        path: path.into(),
        is_test: false,
        text: text.into(),
    };
    let bad = findings_for(
        RULE_ALLOW,
        vec![wrap("src/bad.rs", include_str!("../fixtures/allow_bad.rs"))],
        &cfg,
    );
    assert_eq!(bad.len(), 3, "{bad:#?}");
    assert!(
        bad.iter().any(|f| f
            .message
            .contains("cast_possible_truncation, clippy::cast_sign_loss")),
        "multi-lint attribute is reported verbatim: {bad:#?}"
    );

    let good = findings_for(
        RULE_ALLOW,
        vec![wrap(
            "src/good.rs",
            include_str!("../fixtures/allow_good.rs"),
        )],
        &cfg,
    );
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn exhaustive_rule_fires_on_bad_and_passes_good() {
    let cfg = Config {
        exhaustive_enums: vec![("Verdict".into(), "fixture-crate".into())],
        ..Config::default()
    };
    let wrap = |text: &str| SourceFile {
        crate_name: "fixture-crate".into(),
        path: "src/verdict.rs".into(),
        is_test: false,
        text: text.into(),
    };

    let bad = findings_for(
        RULE_EXHAUSTIVE,
        vec![wrap(include_str!("../fixtures/exhaustive_bad.rs"))],
        &cfg,
    );
    assert_eq!(bad.len(), 2, "{bad:#?}");
    assert!(bad.iter().any(|f| f.message.contains("Verdict::Blocked")));
    assert!(bad.iter().any(|f| f.message.contains("Verdict::Leaked")));

    let good = findings_for(
        RULE_EXHAUSTIVE,
        vec![wrap(include_str!("../fixtures/exhaustive_good.rs"))],
        &cfg,
    );
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn exhaustive_rule_covers_the_modelcheck_verdict() {
    // The default config targets `ModelVerdict` in ptstore-modelcheck; the
    // fixture twins stand in for that crate so the rule's behavior on the
    // verdict enum is pinned independently of the real workspace.
    let cfg = Config {
        exhaustive_enums: vec![("ModelVerdict".into(), "fixture-crate".into())],
        ..Config::default()
    };
    let wrap = |text: &str| SourceFile {
        crate_name: "fixture-crate".into(),
        path: "src/verdict.rs".into(),
        is_test: false,
        text: text.into(),
    };

    let bad = findings_for(
        RULE_EXHAUSTIVE,
        vec![wrap(include_str!("../fixtures/modelverdict_bad.rs"))],
        &cfg,
    );
    assert_eq!(bad.len(), 2, "{bad:#?}");
    assert!(bad
        .iter()
        .any(|f| f.message.contains("ModelVerdict::Falsified")));
    assert!(bad
        .iter()
        .any(|f| f.message.contains("ModelVerdict::Truncated")));

    let good = findings_for(
        RULE_EXHAUSTIVE,
        vec![wrap(include_str!("../fixtures/modelverdict_good.rs"))],
        &cfg,
    );
    assert!(good.is_empty(), "{good:#?}");

    // And the real default config does target the real crate.
    assert!(Config::default()
        .exhaustive_enums
        .iter()
        .any(|(e, k)| e == "ModelVerdict" && k == "ptstore-modelcheck"));
}

#[test]
fn exhaustive_rule_reports_missing_target_enum() {
    let cfg = Config {
        exhaustive_enums: vec![("Vanished".into(), "fixture-crate".into())],
        ..Config::default()
    };
    let out = analyze(Vec::new(), &cfg);
    assert_eq!(out.len(), 1);
    assert!(out[0].message.contains("not found"), "{out:#?}");
}

#[test]
fn findings_are_sorted_and_deduplicated() {
    let cfg = Config::default();
    // Feed the same bad file twice under different paths: output must be
    // sorted by (file, line, rule, message) with no duplicates per file.
    let out = analyze(
        vec![
            kernel_file("src/b.rs", include_str!("../fixtures/channel_bad.rs")),
            kernel_file("src/a.rs", include_str!("../fixtures/channel_bad.rs")),
        ],
        &cfg,
    );
    let mut sorted = out.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(out, sorted, "analyze output is canonical");
    assert!(out.first().unwrap().file < out.last().unwrap().file);
}
