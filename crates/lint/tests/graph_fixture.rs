//! Call-graph builder: a hand-checked reachability fixture plus property
//! tests that construction is deterministic and independent of file and
//! function order — the guarantee the linter's byte-identical JSON output
//! rests on.

use proptest::prelude::*;
use ptstore_lint::{CallGraph, ParsedFile, SourceFile};

fn parse(path: &str, text: &str) -> ParsedFile {
    ParsedFile::parse(SourceFile {
        crate_name: "fixture".into(),
        path: path.into(),
        is_test: false,
        text: text.into(),
    })
}

/// A small crate split over two files, with a call chain crossing the file
/// boundary, a diamond, a cycle, and a nested function.
const FILE_A: &str = r#"
fn alpha() { beta(); gamma(); }
fn beta() { delta(); }
fn gamma() { delta(); }
fn recursive() { recursive(); helper(); }
"#;

const FILE_B: &str = r#"
fn delta() { leaf(); }
fn leaf() {}
fn helper() {}
fn outer() {
    fn inner() { leaf(); }
    inner();
}
"#;

#[test]
fn hand_built_reachability_matches() {
    let a = parse("src/a.rs", FILE_A);
    let b = parse("src/b.rs", FILE_B);
    let g = CallGraph::build([&a, &b]);

    let reach = |from: &str| -> Vec<String> { g.reachable(from).into_iter().collect() };

    // Diamond: alpha → {beta, gamma} → delta → leaf.
    assert_eq!(reach("alpha"), ["alpha", "beta", "delta", "gamma", "leaf"]);
    // Cross-file chain.
    assert_eq!(reach("beta"), ["beta", "delta", "leaf"]);
    // Cycle terminates and includes the helper.
    assert_eq!(reach("recursive"), ["helper", "recursive"]);
    // Leaves reach only themselves.
    assert_eq!(reach("leaf"), ["leaf"]);
    // Unknown names reach nothing.
    assert!(reach("no_such_fn").is_empty());

    assert!(g.reaches_any("alpha", &["leaf"]));
    assert!(!g.reaches_any("helper", &["leaf"]));
}

#[test]
fn nested_fn_calls_belong_to_the_inner_fn() {
    let b = parse("src/b.rs", FILE_B);
    let g = CallGraph::build([&b]);
    // `outer` calls `inner`; the `leaf()` call inside `inner`'s body must
    // not be attributed to `outer` directly...
    assert_eq!(g.edges["outer"].iter().collect::<Vec<_>>(), ["inner"]);
    // ...but it is still reachable transitively.
    assert!(g.reaches_any("outer", &["leaf"]));
}

#[test]
fn external_sinks_become_nodes() {
    let a = parse("src/a.rs", "fn f() { ext_flush(x); }");
    let g = CallGraph::build_with_sinks([&a], &["ext_flush"]);
    assert!(g.reaches_any("f", &["ext_flush"]));
    // Without the sink declaration the call is invisible.
    let g2 = CallGraph::build([&a]);
    assert!(!g2.reaches_any("f", &["ext_flush"]));
}

/// A pool of function names used to generate random crates.
const NAMES: [&str; 8] = ["a0", "b1", "c2", "d3", "e4", "f5", "g6", "h7"];

/// Generates one source file text defining `fns`, where each function calls
/// the listed callees.
fn render_file(fns: &[(usize, Vec<usize>)]) -> String {
    let mut s = String::new();
    for (name, callees) in fns {
        s.push_str(&format!("fn {}() {{ ", NAMES[*name]));
        for c in callees {
            s.push_str(&format!("{}(); ", NAMES[*c]));
        }
        s.push_str("}\n");
    }
    s
}

proptest! {
    /// Building twice from the same inputs yields an identical graph, and
    /// shuffling both the file order and the function order within files
    /// changes nothing: the graph is a pure function of the *set* of
    /// definitions.
    #[test]
    fn build_is_deterministic_and_order_independent(
        // Up to 8 functions, each calling up to 4 of the pool.
        fns in proptest::collection::vec(
            (0usize..NAMES.len(), proptest::collection::vec(0usize..NAMES.len(), 0..4)),
            1..NAMES.len(),
        ),
        split in 0usize..8,
        seed in 0u64..u64::MAX,
    ) {
        // Dedup by name: name-based resolution collapses same-named fns.
        let mut seen = std::collections::BTreeSet::new();
        let fns: Vec<(usize, Vec<usize>)> =
            fns.into_iter().filter(|(n, _)| seen.insert(*n)).collect();

        let cut = split % (fns.len() + 1);
        let a = parse("src/a.rs", &render_file(&fns[..cut]));
        let b = parse("src/b.rs", &render_file(&fns[cut..]));
        let g1 = CallGraph::build([&a, &b]);
        let g2 = CallGraph::build([&a, &b]);
        prop_assert_eq!(&g1, &g2, "same inputs, same graph");

        // Reversed file order.
        let g3 = CallGraph::build([&b, &a]);
        prop_assert_eq!(&g1, &g3, "file order is irrelevant");

        // Shuffled function order within a single file.
        let mut shuffled = fns.clone();
        // Deterministic pseudo-shuffle driven by the seed.
        let n = shuffled.len();
        for i in (1..n).rev() {
            let j = (seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)
                % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        let c = parse("src/c.rs", &render_file(&shuffled));
        let d = parse("src/a.rs", &render_file(&fns));
        let g4 = CallGraph::build([&c]);
        let g5 = CallGraph::build([&d]);
        prop_assert_eq!(&g4, &g5, "function order is irrelevant");
    }
}
