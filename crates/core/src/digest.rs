//! Deterministic FNV-1a hashing for machine-state fingerprints.
//!
//! Several layers of the model need a stable, platform-independent digest of
//! some canonical state listing: the C1M drain-policy sweep fingerprints the
//! final TLB contents across policies, the hwcost timing model derives
//! deterministic place-and-route jitter from the design name, and the bounded
//! model checker dedups reachable machine states by canonical hash. All of
//! them use 64-bit FNV-1a with the standard offset basis and prime so that
//! digests are reproducible across hosts, processes, and `--jobs` settings.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// ```
/// use ptstore_core::digest::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write(b"hart0 itlb ...");
/// h.write_u8(b'\n');
/// let digest = h.finish();
/// assert_eq!(digest, Fnv1a::hash_bytes(b"hart0 itlb ...\n"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET_BASIS)
    }

    /// Absorbs one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Absorbs a byte slice.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest accumulated so far.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot digest of a byte slice.
    pub fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = Fnv1a::new();
        h.write(bytes);
        h.finish()
    }

    /// One-shot digest of a sorted listing of lines, newline-terminated —
    /// the canonical "sorted state strings" fingerprint shape shared by the
    /// TLB digest and the model checker. The caller sorts; this just frames.
    pub fn hash_lines<S: AsRef<str>>(lines: &[S]) -> u64 {
        let mut h = Fnv1a::new();
        for s in lines {
            h.write(s.as_ref().as_bytes());
            h.write_u8(b'\n');
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(Fnv1a::hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv1a::hash_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn line_framing_distinguishes_boundaries() {
        // ["ab", "c"] and ["a", "bc"] must not collide: the newline frame
        // is part of the digest.
        assert_ne!(
            Fnv1a::hash_lines(&["ab", "c"]),
            Fnv1a::hash_lines(&["a", "bc"])
        );
        assert_eq!(
            Fnv1a::hash_lines(&["ab", "c"]),
            Fnv1a::hash_bytes(b"ab\nc\n")
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv1a::new();
        h.write(b"hello ");
        h.write(b"world");
        assert_eq!(h.finish(), Fnv1a::hash_bytes(b"hello world"));
    }
}
