//! Physical Memory Protection with the PTStore S-bit extension.
//!
//! RISC-V PMP lets M-mode code assign permissions to physical memory regions
//! (paper §II-A). PTStore adds one bit — **S**, for *secure* — to each
//! `pmpcfg` entry (paper §IV-A1). A region whose matching entry has S set:
//!
//! * **denies** every access from the [`Channel::Regular`] path,
//! * **grants** the dedicated `ld.pt`/`sd.pt` channel and the page-table
//!   walker, subject to the entry's R/W bits.
//!
//! Conversely, outside any S region the `ld.pt`/`sd.pt` channel is denied
//! (the new instructions *only* access the secure region) and, once `satp.S`
//! is enabled, so is the walker.
//!
//! The unit models the standard entry-priority matching of the RISC-V
//! privileged spec with `OFF`/`TOR`/`NA4`/`NAPOT` address modes; the secure
//! region is installed as a `TOR` pair so it can grow to non-power-of-two
//! sizes during dynamic adjustment (paper §IV-C1).
//!
//! One deliberate simplification: when *no* entry matches an S/U-mode access
//! the model allows it (real hardware with ≥1 implemented entry would deny).
//! The kernel model always runs with a full background mapping, so the
//! distinction never matters here; it is documented for fidelity.

use core::cell::Cell;
use core::fmt;

use ptstore_trace::{TraceEvent, TraceSink, Verdict};
use serde::{Deserialize, Serialize};

use crate::addr::{PhysAddr, PAGE_SHIFT, PAGE_SIZE};
use crate::channel::{AccessKind, Channel};
use crate::error::{AccessError, RegionError};
use crate::privilege::PrivilegeMode;
use crate::region::SecureRegion;

/// Number of PMP entries implemented by the modelled core (BOOM default).
pub const PMP_ENTRY_COUNT: usize = 8;

/// PMP address-matching mode (the `A` field of `pmpcfg`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PmpAddressMode {
    /// Entry disabled.
    #[default]
    Off,
    /// Top-of-range: matches `[pmpaddr[i-1], pmpaddr[i])`.
    Tor,
    /// Naturally aligned four-byte region.
    Na4,
    /// Naturally aligned power-of-two region, ≥ 8 bytes.
    Napot,
}

impl PmpAddressMode {
    /// The 2-bit `A`-field encoding.
    pub const fn encoding(self) -> u8 {
        match self {
            PmpAddressMode::Off => 0,
            PmpAddressMode::Tor => 1,
            PmpAddressMode::Na4 => 2,
            PmpAddressMode::Napot => 3,
        }
    }

    /// Decodes the 2-bit `A` field.
    pub const fn from_encoding(bits: u8) -> Self {
        match bits & 0b11 {
            0 => PmpAddressMode::Off,
            1 => PmpAddressMode::Tor,
            2 => PmpAddressMode::Na4,
            _ => PmpAddressMode::Napot,
        }
    }
}

/// One `pmpcfg` byte, including the PTStore S-bit.
///
/// Bit layout (PTStore uses the reserved bit 5 of the base ISA):
///
/// | bit | name | meaning                        |
/// |-----|------|--------------------------------|
/// | 0   | R    | read permission                |
/// | 1   | W    | write permission               |
/// | 2   | X    | execute permission             |
/// | 3–4 | A    | address-matching mode          |
/// | 5   | S    | **PTStore secure region** (new)|
/// | 7   | L    | locked (applies to M-mode too) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct PmpPermissions(u8);

impl PmpPermissions {
    const R: u8 = 1 << 0;
    const W: u8 = 1 << 1;
    const X: u8 = 1 << 2;
    const A_SHIFT: u8 = 3;
    const S: u8 = 1 << 5;
    const L: u8 = 1 << 7;

    /// An all-clear (disabled) configuration byte.
    pub const fn new() -> Self {
        Self(0)
    }

    /// Builds from a raw `pmpcfg` byte.
    pub const fn from_bits(bits: u8) -> Self {
        Self(bits)
    }

    /// Raw `pmpcfg` byte.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Read permission.
    pub const fn readable(self) -> bool {
        self.0 & Self::R != 0
    }

    /// Write permission.
    pub const fn writable(self) -> bool {
        self.0 & Self::W != 0
    }

    /// Execute permission.
    pub const fn executable(self) -> bool {
        self.0 & Self::X != 0
    }

    /// The PTStore secure bit.
    pub const fn secure(self) -> bool {
        self.0 & Self::S != 0
    }

    /// The lock bit.
    pub const fn locked(self) -> bool {
        self.0 & Self::L != 0
    }

    /// The address-matching mode.
    pub const fn address_mode(self) -> PmpAddressMode {
        PmpAddressMode::from_encoding(self.0 >> Self::A_SHIFT)
    }

    /// Returns a copy with read permission set.
    pub const fn with_read(self) -> Self {
        Self(self.0 | Self::R)
    }

    /// Returns a copy with write permission set.
    pub const fn with_write(self) -> Self {
        Self(self.0 | Self::W)
    }

    /// Returns a copy with execute permission set.
    pub const fn with_execute(self) -> Self {
        Self(self.0 | Self::X)
    }

    /// Returns a copy with the PTStore secure bit set.
    pub const fn with_secure(self) -> Self {
        Self(self.0 | Self::S)
    }

    /// Returns a copy with the lock bit set.
    pub const fn with_locked(self) -> Self {
        Self(self.0 | Self::L)
    }

    /// Returns a copy with the given address mode.
    pub const fn with_mode(self, mode: PmpAddressMode) -> Self {
        Self((self.0 & !(0b11 << Self::A_SHIFT)) | (mode.encoding() << Self::A_SHIFT))
    }

    /// True when the access kind is permitted by the R/W/X bits.
    pub const fn permits(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.readable(),
            AccessKind::Write => self.writable(),
            AccessKind::Execute => self.executable(),
        }
    }
}

impl fmt::Display for PmpPermissions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}{} {:?}",
            if self.readable() { 'r' } else { '-' },
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' },
            if self.secure() { 's' } else { '-' },
            if self.locked() { 'l' } else { '-' },
            self.address_mode()
        )
    }
}

/// One PMP entry: a configuration byte plus the raw `pmpaddr` register
/// (physical address bits `[55:2]`, i.e. the address shifted right by two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct PmpEntry {
    /// The `pmpcfg` byte for this entry.
    pub cfg: PmpPermissions,
    /// The raw `pmpaddr` register value (`addr >> 2`).
    pub addr: u64,
}

impl PmpEntry {
    /// Builds the `pmpaddr` encoding of a byte address.
    pub const fn encode_addr(pa: PhysAddr) -> u64 {
        pa.as_u64() >> 2
    }

    /// Decodes a raw `pmpaddr` value back into a byte address.
    pub const fn decode_addr(raw: u64) -> PhysAddr {
        PhysAddr::new(raw << 2)
    }

    /// For a NAPOT entry, the (base, size) it covers.
    fn napot_range(self) -> (u64, u64) {
        // pmpaddr = base/4 | (size/8 - 1): trailing ones encode the size.
        let trailing = self.addr.trailing_ones() as u64;
        let size = 8u64 << trailing;
        let base = (self.addr & !((1 << trailing) - 1)) << 2;
        (base, size)
    }
}

/// Which decision the PMP reached for an access, with entry attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MatchResult {
    index: usize,
    cfg: PmpPermissions,
}

/// Slots in the per-page match cache, direct-mapped by the low PPN bits.
const MATCH_CACHE_SLOTS: usize = 64;

/// What the match cache knows about one physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageMatch {
    /// No active entry boundary cuts through the page, so every address in
    /// it resolves to the same highest-priority entry (or to none).
    Uniform(Option<MatchResult>),
    /// An entry boundary crosses the page (TOR/NA4 are 4-byte granular);
    /// addresses within it must take the full scan.
    Mixed,
}

#[derive(Debug, Clone, Copy)]
struct MatchCacheSlot {
    /// Configuration epoch the slot was filled under.
    epoch: u64,
    ppn: u64,
    state: PageMatch,
}

/// Epoch-tagged per-page memoization of [`PmpUnit::match_entry`].
///
/// The PMP verdict is a pure function of the entry file and the physical
/// page (plus channel/context, which [`PmpUnit::decide`] folds in cheaply),
/// so repeated accesses to the same page can skip the prioritised entry
/// scan. Every configuration mutation — a `pmpcfg`/`pmpaddr` CSR write or a
/// secure-region install/adjust — bumps `epoch`, which lazily invalidates
/// all slots. Host-side only: never serialized, never part of equality, and
/// bypassed entirely when disabled so differential tests can pin the cached
/// and uncached paths against each other.
#[derive(Debug, Clone)]
struct MatchCache {
    enabled: bool,
    epoch: u64,
    slots: [Cell<Option<MatchCacheSlot>>; MATCH_CACHE_SLOTS],
}

impl Default for MatchCache {
    fn default() -> Self {
        Self {
            enabled: crate::fastpath::default_enabled(),
            epoch: 0,
            slots: core::array::from_fn(|_| Cell::new(None)),
        }
    }
}

/// Context needed to evaluate an access: the hart's privilege mode and the
/// `satp.S` bit that arms the page-table-walker origin check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessContext {
    /// Current privilege mode of the hart.
    pub mode: PrivilegeMode,
    /// The new S-bit of the `satp` CSR (paper §IV-A1): when set, the walker
    /// may only fetch page tables from the secure region.
    pub satp_s: bool,
    /// Issuing hart. The PMP verdict is hart-independent (every hart holds
    /// an identical secure-region configuration), but the id attributes
    /// accesses and trace events on SMP machines.
    pub hart: usize,
}

impl AccessContext {
    /// A supervisor-mode access context on hart 0.
    pub const fn supervisor(satp_s: bool) -> Self {
        Self {
            mode: PrivilegeMode::Supervisor,
            satp_s,
            hart: 0,
        }
    }

    /// A user-mode access context on hart 0.
    pub const fn user(satp_s: bool) -> Self {
        Self {
            mode: PrivilegeMode::User,
            satp_s,
            hart: 0,
        }
    }

    /// A machine-mode access context (PTW check disabled at boot).
    pub const fn machine() -> Self {
        Self {
            mode: PrivilegeMode::Machine,
            satp_s: false,
            hart: 0,
        }
    }

    /// The same context attributed to `hart`.
    pub const fn on_hart(mut self, hart: usize) -> Self {
        self.hart = hart;
        self
    }
}

/// The PMP unit of the modelled core: [`PMP_ENTRY_COUNT`] prioritised entries
/// plus helpers to install and resize the PTStore secure region as a TOR pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PmpUnit {
    entries: [PmpEntry; PMP_ENTRY_COUNT],
    /// Index of the TOR entry carrying the secure region's S-bit, when
    /// installed (its lower bound lives in the preceding entry).
    secure_tor_index: Option<usize>,
    /// Optional decision-trace sink; not part of the architectural state.
    #[serde(skip)]
    trace: Option<TraceSink>,
    /// Host-side per-page match memoization; not architectural state.
    #[serde(skip)]
    match_cache: MatchCache,
    /// Ablation switch (defaults to `true`): when `false`, the S-bit loses
    /// its channel semantics and regular accesses reach the secure region
    /// subject only to the entry's R/W permissions. The fault-injection
    /// campaign disables this to prove the invariant oracle catches landed
    /// page-table corruption; the full design never clears it.
    secure_enforcement: bool,
}

/// Equality covers the architectural state only; an attached trace sink is
/// an observer, not part of the unit.
impl PartialEq for PmpUnit {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries && self.secure_tor_index == other.secure_tor_index
    }
}

impl Eq for PmpUnit {}

impl Default for PmpUnit {
    fn default() -> Self {
        Self::new()
    }
}

impl PmpUnit {
    /// A PMP unit with every entry disabled.
    pub fn new() -> Self {
        Self {
            entries: [PmpEntry::default(); PMP_ENTRY_COUNT],
            secure_tor_index: None,
            trace: None,
            match_cache: MatchCache::default(),
            secure_enforcement: true,
        }
    }

    /// Enables or disables S-bit enforcement (the fault-campaign ablation
    /// hook). With enforcement off, [`check`](Self::check) treats secure
    /// entries as ordinary R/W entries for the regular channel; the
    /// dedicated-channel and walker rules are unchanged.
    pub fn set_secure_enforcement(&mut self, enabled: bool) {
        self.secure_enforcement = enabled;
        self.invalidate_match_cache();
    }

    /// Whether S-bit enforcement is active (true in the full design).
    pub fn secure_enforcement(&self) -> bool {
        self.secure_enforcement
    }

    /// Enables or disables the per-page match cache. Purely a host-side
    /// speed switch: verdicts are identical either way.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.match_cache.enabled = enabled;
        self.invalidate_match_cache();
    }

    /// Whether the per-page match cache is enabled.
    pub fn fast_path(&self) -> bool {
        self.match_cache.enabled
    }

    /// Lazily invalidates every match-cache slot. Must be called by every
    /// mutation of the entry file.
    #[inline]
    fn invalidate_match_cache(&mut self) {
        self.match_cache.epoch = self.match_cache.epoch.wrapping_add(1);
    }

    /// Attaches (or detaches) a decision-trace sink. Every subsequent
    /// [`check`](Self::check) emits one [`TraceEvent::PmpCheck`] naming the
    /// matching entry and the verdict.
    pub fn set_trace_sink(&mut self, sink: Option<TraceSink>) {
        self.trace = sink;
    }

    /// The currently attached trace sink, if any.
    pub fn trace_sink(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Read-only view of the raw entries.
    pub fn entries(&self) -> &[PmpEntry; PMP_ENTRY_COUNT] {
        &self.entries
    }

    /// Writes one raw entry (the M-mode CSR interface).
    ///
    /// # Panics
    /// Panics if `index >= PMP_ENTRY_COUNT`.
    pub fn set_entry(&mut self, index: usize, entry: PmpEntry) {
        self.entries[index] = entry;
        self.invalidate_match_cache();
    }

    /// Reads one raw entry.
    ///
    /// # Panics
    /// Panics if `index >= PMP_ENTRY_COUNT`.
    pub fn entry(&self, index: usize) -> PmpEntry {
        self.entries[index]
    }

    /// Installs `region` as a TOR pair with the S-bit, using the first two
    /// free adjacent entries.
    ///
    /// # Errors
    /// Returns [`RegionError::NoPmpEntry`] when no adjacent pair of disabled
    /// entries exists.
    pub fn install_secure_region(&mut self, region: &SecureRegion) -> Result<(), RegionError> {
        let pair = (0..PMP_ENTRY_COUNT - 1).find(|&i| {
            self.entries[i].cfg.address_mode() == PmpAddressMode::Off
                && self.entries[i].cfg.bits() == 0
                && self.entries[i + 1].cfg.address_mode() == PmpAddressMode::Off
                && self.entries[i + 1].cfg.bits() == 0
        });
        let Some(i) = pair else {
            return Err(RegionError::NoPmpEntry);
        };
        // Lower bound: an OFF entry whose pmpaddr seeds the following TOR.
        self.entries[i] = PmpEntry {
            cfg: PmpPermissions::new(),
            addr: PmpEntry::encode_addr(region.base()),
        };
        self.entries[i + 1] = PmpEntry {
            cfg: PmpPermissions::new()
                .with_read()
                .with_write()
                .with_secure()
                .with_mode(PmpAddressMode::Tor),
            addr: PmpEntry::encode_addr(region.end()),
        };
        self.secure_tor_index = Some(i + 1);
        self.invalidate_match_cache();
        Ok(())
    }

    /// Rewrites the installed secure region's boundaries (the SBI `set`
    /// operation used during dynamic adjustment).
    ///
    /// # Errors
    /// Returns [`RegionError::NoPmpEntry`] when no region is installed.
    pub fn update_secure_region(&mut self, region: &SecureRegion) -> Result<(), RegionError> {
        let tor = self.secure_tor_index.ok_or(RegionError::NoPmpEntry)?;
        self.entries[tor - 1].addr = PmpEntry::encode_addr(region.base());
        self.entries[tor].addr = PmpEntry::encode_addr(region.end());
        self.invalidate_match_cache();
        Ok(())
    }

    /// The currently installed secure region, reconstructed from the TOR pair.
    pub fn secure_region(&self) -> Option<SecureRegion> {
        let tor = self.secure_tor_index?;
        let base = PmpEntry::decode_addr(self.entries[tor - 1].addr);
        let end = PmpEntry::decode_addr(self.entries[tor].addr);
        SecureRegion::new(base, end.offset_from(base)).ok()
    }

    /// True when `addr` falls inside an installed S region.
    pub fn is_secure(&self, addr: PhysAddr) -> bool {
        matches!(self.match_entry(addr), Some(m) if m.cfg.secure())
    }

    /// Finds the highest-priority (lowest-index) entry matching `addr`,
    /// consulting the per-page cache first. Returns exactly what
    /// [`Self::match_entry_uncached`] would: a cached page is only trusted
    /// when it is *uniform* (no active entry boundary crosses it), so the
    /// memoized result is the scan result for every address in the page.
    #[inline]
    fn match_entry(&self, addr: PhysAddr) -> Option<MatchResult> {
        if !self.match_cache.enabled {
            return self.match_entry_uncached(addr);
        }
        let ppn = addr.as_u64() >> PAGE_SHIFT;
        let slot = &self.match_cache.slots[(ppn as usize) & (MATCH_CACHE_SLOTS - 1)];
        if let Some(s) = slot.get() {
            if s.epoch == self.match_cache.epoch && s.ppn == ppn {
                return match s.state {
                    PageMatch::Uniform(m) => m,
                    PageMatch::Mixed => self.match_entry_uncached(addr),
                };
            }
        }
        let state = if self.page_is_uniform(ppn) {
            PageMatch::Uniform(self.match_entry_uncached(addr))
        } else {
            PageMatch::Mixed
        };
        slot.set(Some(MatchCacheSlot {
            epoch: self.match_cache.epoch,
            ppn,
            state,
        }));
        match state {
            PageMatch::Uniform(m) => m,
            PageMatch::Mixed => self.match_entry_uncached(addr),
        }
    }

    /// The byte range `[lo, hi)` an active entry covers, in u128 so NAPOT
    /// sizes cannot overflow. `None` for OFF entries; a TOR entry with
    /// `hi <= lo` matches nothing and is returned as-is.
    fn entry_range(&self, i: usize) -> Option<(u128, u128)> {
        let e = self.entries[i];
        match e.cfg.address_mode() {
            PmpAddressMode::Off => None,
            PmpAddressMode::Tor => {
                let lo = if i == 0 {
                    0
                } else {
                    (self.entries[i - 1].addr as u128) << 2
                };
                Some((lo, (e.addr as u128) << 2))
            }
            PmpAddressMode::Na4 => {
                let base = (e.addr as u128) << 2;
                Some((base, base + 4))
            }
            PmpAddressMode::Napot => {
                let trailing = e.addr.trailing_ones();
                let base = ((e.addr as u128) & !((1u128 << trailing) - 1)) << 2;
                Some((base, base + (8u128 << trailing)))
            }
        }
    }

    /// True when no active entry boundary cuts through page `ppn`: every
    /// entry range either misses the page entirely or contains all of it.
    fn page_is_uniform(&self, ppn: u64) -> bool {
        let page_lo = (ppn as u128) << PAGE_SHIFT;
        let page_hi = page_lo + PAGE_SIZE as u128;
        (0..PMP_ENTRY_COUNT).all(|i| match self.entry_range(i) {
            None => true,
            Some((lo, hi)) => {
                hi <= lo || hi <= page_lo || lo >= page_hi || (lo <= page_lo && hi >= page_hi)
            }
        })
    }

    /// The full prioritised entry scan behind [`Self::match_entry`].
    fn match_entry_uncached(&self, addr: PhysAddr) -> Option<MatchResult> {
        let a = addr.as_u64();
        for (i, e) in self.entries.iter().enumerate() {
            let hit = match e.cfg.address_mode() {
                PmpAddressMode::Off => false,
                PmpAddressMode::Tor => {
                    let lo = if i == 0 {
                        0
                    } else {
                        self.entries[i - 1].addr << 2
                    };
                    let hi = e.addr << 2;
                    a >= lo && a < hi
                }
                PmpAddressMode::Na4 => {
                    let base = e.addr << 2;
                    a >= base && a < base + 4
                }
                PmpAddressMode::Napot => {
                    let (base, size) = e.napot_range();
                    a >= base && a < base + size
                }
            };
            if hit {
                return Some(MatchResult {
                    index: i,
                    cfg: e.cfg,
                });
            }
        }
        None
    }

    /// Evaluates one physical access against the PMP, applying PTStore's
    /// channel rules.
    ///
    /// # Errors
    /// [`AccessError::SecureRegionDenied`] for regular accesses into an S
    /// region; [`AccessError::SecureInstructionOutsideRegion`] for
    /// `ld.pt`/`sd.pt` outside every S region;
    /// [`AccessError::PtwOutsideRegion`] for walker fetches outside the S
    /// region while `ctx.satp_s` is set; [`AccessError::PmpDenied`] for
    /// ordinary R/W/X violations.
    pub fn check(
        &self,
        addr: PhysAddr,
        kind: AccessKind,
        channel: Channel,
        ctx: AccessContext,
    ) -> Result<(), AccessError> {
        let matched = self.match_entry(addr);
        let result = self.decide(addr, kind, channel, ctx, matched);
        if let Some(sink) = &self.trace {
            sink.emit(TraceEvent::PmpCheck {
                addr: addr.as_u64(),
                kind: kind.into(),
                channel: channel.into(),
                entry: matched.map(|m| m.index as u8),
                verdict: match &result {
                    Ok(()) => Verdict::Allowed,
                    Err(e) => e.trace_verdict(),
                },
            });
        }
        result
    }

    /// The pure decision function behind [`check`](Self::check).
    fn decide(
        &self,
        addr: PhysAddr,
        kind: AccessKind,
        channel: Channel,
        ctx: AccessContext,
        matched: Option<MatchResult>,
    ) -> Result<(), AccessError> {
        let secure = matches!(matched, Some(m) if m.cfg.secure());

        if secure {
            // Inside the secure region: only the dedicated instructions and
            // the walker may proceed, and only within the entry's R/W bits.
            let m = matched.expect("secure implies a match");
            match channel {
                Channel::Regular if self.secure_enforcement => {
                    Err(AccessError::SecureRegionDenied { addr, kind })
                }
                Channel::Regular => {
                    // Ablated S-bit: fall back to the entry's R/W bits.
                    if m.cfg.permits(kind) {
                        Ok(())
                    } else {
                        Err(AccessError::PmpDenied {
                            addr,
                            kind,
                            channel,
                        })
                    }
                }
                Channel::SecurePt | Channel::Ptw => {
                    if m.cfg.permits(kind) {
                        Ok(())
                    } else {
                        Err(AccessError::PmpDenied {
                            addr,
                            kind,
                            channel,
                        })
                    }
                }
            }
        } else {
            // Outside the secure region.
            if channel.is_secure_instruction() {
                return Err(AccessError::SecureInstructionOutsideRegion { addr, kind });
            }
            if channel.is_walker() && ctx.satp_s {
                return Err(AccessError::PtwOutsideRegion { addr });
            }
            match matched {
                None => Ok(()), // documented model simplification
                Some(m) => {
                    // M-mode ignores unlocked entries.
                    if ctx.mode == PrivilegeMode::Machine && !m.cfg.locked() {
                        return Ok(());
                    }
                    if m.cfg.permits(kind) {
                        Ok(())
                    } else {
                        Err(AccessError::PmpDenied {
                            addr,
                            kind,
                            channel,
                        })
                    }
                }
            }
        }
    }
}

impl fmt::Display for PmpUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pmp unit ({PMP_ENTRY_COUNT} entries)")?;
        for (i, e) in self.entries.iter().enumerate() {
            if e.cfg.address_mode() != PmpAddressMode::Off || e.addr != 0 {
                writeln!(f, "  [{i}] {} pmpaddr={:#x}", e.cfg, e.addr)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{MIB, PAGE_SIZE};

    fn unit_with_region(base: u64, size: u64) -> (PmpUnit, SecureRegion) {
        let region = SecureRegion::new(PhysAddr::new(base), size).unwrap();
        let mut pmp = PmpUnit::new();
        pmp.install_secure_region(&region).unwrap();
        (pmp, region)
    }

    #[test]
    fn secure_region_round_trips_through_tor_pair() {
        let (pmp, region) = unit_with_region(0xFC00_0000, 64 * MIB);
        assert_eq!(pmp.secure_region(), Some(region));
        assert!(pmp.is_secure(PhysAddr::new(0xFC00_0000)));
        assert!(pmp.is_secure(PhysAddr::new(0xFFFF_FFF8)));
        assert!(!pmp.is_secure(PhysAddr::new(0xFBFF_FFF8)));
    }

    #[test]
    fn regular_access_denied_in_region() {
        let (pmp, _) = unit_with_region(0xFC00_0000, 64 * MIB);
        let ctx = AccessContext::supervisor(true);
        let err = pmp
            .check(
                PhysAddr::new(0xFC00_0100),
                AccessKind::Write,
                Channel::Regular,
                ctx,
            )
            .unwrap_err();
        assert!(matches!(err, AccessError::SecureRegionDenied { .. }));
        // Reads denied too — the region is invisible to regular code.
        assert!(pmp
            .check(
                PhysAddr::new(0xFC00_0100),
                AccessKind::Read,
                Channel::Regular,
                ctx
            )
            .is_err());
    }

    #[test]
    fn secure_channel_granted_in_region_only() {
        let (pmp, _) = unit_with_region(0xFC00_0000, 64 * MIB);
        let ctx = AccessContext::supervisor(true);
        pmp.check(
            PhysAddr::new(0xFC00_0100),
            AccessKind::Write,
            Channel::SecurePt,
            ctx,
        )
        .unwrap();
        let err = pmp
            .check(
                PhysAddr::new(0x8000_0000),
                AccessKind::Write,
                Channel::SecurePt,
                ctx,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            AccessError::SecureInstructionOutsideRegion { .. }
        ));
    }

    #[test]
    fn ptw_gated_by_satp_s() {
        let (pmp, _) = unit_with_region(0xFC00_0000, 64 * MIB);
        // Inside: always fine.
        pmp.check(
            PhysAddr::new(0xFC00_0000),
            AccessKind::Read,
            Channel::Ptw,
            AccessContext::supervisor(true),
        )
        .unwrap();
        // Outside with satp.S clear (before boot finishes): allowed.
        pmp.check(
            PhysAddr::new(0x8000_0000),
            AccessKind::Read,
            Channel::Ptw,
            AccessContext::supervisor(false),
        )
        .unwrap();
        // Outside with satp.S set: access fault.
        let err = pmp
            .check(
                PhysAddr::new(0x8000_0000),
                AccessKind::Read,
                Channel::Ptw,
                AccessContext::supervisor(true),
            )
            .unwrap_err();
        assert_eq!(
            err,
            AccessError::PtwOutsideRegion {
                addr: PhysAddr::new(0x8000_0000)
            }
        );
    }

    #[test]
    fn region_boundaries_are_exact() {
        let (pmp, region) = unit_with_region(0xFC00_0000, 64 * MIB);
        let ctx = AccessContext::supervisor(true);
        // One byte below the base is outside.
        assert!(pmp
            .check(region.base() - 1, AccessKind::Read, Channel::Regular, ctx)
            .is_ok());
        // The base itself is inside.
        assert!(pmp
            .check(region.base(), AccessKind::Read, Channel::Regular, ctx)
            .is_err());
        // The end is outside (half-open interval).
        assert!(pmp
            .check(region.end(), AccessKind::Read, Channel::Regular, ctx)
            .is_ok());
        assert!(pmp
            .check(region.end() - 1, AccessKind::Read, Channel::Regular, ctx)
            .is_err());
    }

    #[test]
    fn update_moves_boundary_atomically() {
        let (mut pmp, region) = unit_with_region(0xFC00_0000, 64 * MIB);
        let grown = region.grow_down(16 * MIB).unwrap();
        pmp.update_secure_region(&grown).unwrap();
        assert_eq!(pmp.secure_region(), Some(grown));
        let ctx = AccessContext::supervisor(true);
        // The newly absorbed pages are now secure.
        assert!(pmp
            .check(
                PhysAddr::new(0xFB00_0000),
                AccessKind::Write,
                Channel::Regular,
                ctx
            )
            .is_err());
        assert!(pmp
            .check(
                PhysAddr::new(0xFB00_0000),
                AccessKind::Write,
                Channel::SecurePt,
                ctx
            )
            .is_ok());
    }

    #[test]
    fn install_requires_free_pair() {
        let mut pmp = PmpUnit::new();
        // Fill every entry with NA4 so no pair is free.
        for i in 0..PMP_ENTRY_COUNT {
            pmp.set_entry(
                i,
                PmpEntry {
                    cfg: PmpPermissions::new()
                        .with_read()
                        .with_mode(PmpAddressMode::Na4),
                    addr: (0x1000 + 4 * i as u64) >> 2,
                },
            );
        }
        let region = SecureRegion::new(PhysAddr::new(0x10000), PAGE_SIZE).unwrap();
        assert_eq!(
            pmp.install_secure_region(&region),
            Err(RegionError::NoPmpEntry)
        );
    }

    #[test]
    fn napot_matching() {
        let mut pmp = PmpUnit::new();
        // NAPOT region: 0x2000..0x4000 (8 KiB) -> pmpaddr = 0x2000/4 | (8192/8 - 1)
        pmp.set_entry(
            0,
            PmpEntry {
                cfg: PmpPermissions::new()
                    .with_read()
                    .with_mode(PmpAddressMode::Napot),
                addr: (0x2000 >> 2) | ((8192 >> 3) - 1),
            },
        );
        let ctx = AccessContext::supervisor(false);
        // Read allowed, write denied by R-only perms.
        pmp.check(
            PhysAddr::new(0x2000),
            AccessKind::Read,
            Channel::Regular,
            ctx,
        )
        .unwrap();
        assert!(pmp
            .check(
                PhysAddr::new(0x3ffc),
                AccessKind::Write,
                Channel::Regular,
                ctx
            )
            .is_err());
        // Outside the NAPOT range: unmatched -> allowed.
        pmp.check(
            PhysAddr::new(0x4000),
            AccessKind::Write,
            Channel::Regular,
            ctx,
        )
        .unwrap();
    }

    #[test]
    fn machine_mode_bypasses_unlocked_entries_only() {
        let mut pmp = PmpUnit::new();
        pmp.set_entry(
            0,
            PmpEntry {
                cfg: PmpPermissions::new().with_mode(PmpAddressMode::Napot), // no perms
                addr: (0x2000 >> 2) | ((8192 >> 3) - 1),
            },
        );
        let addr = PhysAddr::new(0x2000);
        // M-mode sails through an unlocked entry.
        pmp.check(
            addr,
            AccessKind::Write,
            Channel::Regular,
            AccessContext::machine(),
        )
        .unwrap();
        // Lock it: now M-mode is constrained too.
        let locked = PmpEntry {
            cfg: PmpPermissions::new()
                .with_locked()
                .with_mode(PmpAddressMode::Napot),
            addr: (0x2000 >> 2) | ((8192 >> 3) - 1),
        };
        pmp.set_entry(0, locked);
        assert!(pmp
            .check(
                addr,
                AccessKind::Write,
                Channel::Regular,
                AccessContext::machine()
            )
            .is_err());
        // S-mode was always constrained.
        assert!(pmp
            .check(
                addr,
                AccessKind::Write,
                Channel::Regular,
                AccessContext::supervisor(false)
            )
            .is_err());
    }

    #[test]
    fn secure_region_rw_bits_still_apply_to_secure_channel() {
        // Install a read-only secure region manually: sd.pt must be denied.
        let mut pmp = PmpUnit::new();
        let region = SecureRegion::new(PhysAddr::new(0x10000), PAGE_SIZE).unwrap();
        pmp.install_secure_region(&region).unwrap();
        let tor = pmp.secure_region().unwrap();
        assert_eq!(tor, region);
        // Strip the W bit from the TOR entry.
        let e = pmp.entry(1);
        pmp.set_entry(
            1,
            PmpEntry {
                cfg: PmpPermissions::from_bits(e.cfg.bits() & !0b010),
                addr: e.addr,
            },
        );
        let ctx = AccessContext::supervisor(true);
        pmp.check(region.base(), AccessKind::Read, Channel::SecurePt, ctx)
            .unwrap();
        assert!(matches!(
            pmp.check(region.base(), AccessKind::Write, Channel::SecurePt, ctx),
            Err(AccessError::PmpDenied { .. })
        ));
    }

    #[test]
    fn display_lists_active_entries() {
        let (pmp, _) = unit_with_region(0xFC00_0000, 64 * MIB);
        let s = pmp.to_string();
        assert!(s.contains("[1]"));
        assert!(s.contains('s'));
    }
}
