//! # ptstore-core
//!
//! The primary contribution of *PTStore: Lightweight Architectural Support for
//! Page Table Isolation* (DAC 2023), as an executable Rust model.
//!
//! PTStore consists of four architectural pieces, all defined in this crate:
//!
//! 1. A hardware-enforced contiguous **secure region** of physical memory,
//!    identified by a new **S-bit** added to each PMP entry ([`pmp::PmpUnit`],
//!    [`region::SecureRegion`]).
//! 2. A pair of dedicated load/store instructions (`ld.pt` / `sd.pt`) that are
//!    the *only* instructions permitted to access the secure region. In the
//!    model every memory access carries a [`channel::Channel`] identifying
//!    which path issued it.
//! 3. A **page-table-walker origin check**: when enabled via the new S-bit in
//!    the `satp` CSR, the PTW only fetches page tables from the secure region
//!    ([`policy`]).
//! 4. A **token mechanism** binding each process's page-table pointer to its
//!    process control block, defeating page-table reuse attacks
//!    ([`token::Token`]).
//!
//! The central decision procedure is [`policy::check_access`]; the memory bus
//! in `ptstore-mem` routes every simulated access through it.
//!
//! ```
//! use ptstore_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pmp = PmpUnit::new();
//! let region = SecureRegion::new(PhysAddr::new(0x8000_0000), 64 * MIB)?;
//! pmp.install_secure_region(&region)?;
//!
//! // A regular store into the secure region is denied...
//! let ctx = AccessContext::supervisor(true);
//! assert!(pmp
//!     .check(PhysAddr::new(0x8000_0100), AccessKind::Write, Channel::Regular, ctx)
//!     .is_err());
//! // ...while the dedicated `sd.pt` channel is granted.
//! pmp.check(PhysAddr::new(0x8000_0100), AccessKind::Write, Channel::SecurePt, ctx)?;
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod addr;
pub mod channel;
pub mod digest;
pub mod error;
pub mod fastpath;
pub mod paging;
pub mod pmp;
pub mod policy;
pub mod privilege;
pub mod region;
pub mod token;

pub use addr::{
    PhysAddr, PhysPageNum, VirtAddr, VirtPageNum, GIB, KIB, MIB, PAGE_SHIFT, PAGE_SIZE,
};
pub use channel::{AccessKind, Channel};
pub use digest::Fnv1a;
pub use error::{AccessError, RegionError, TokenError};
pub use paging::{PageSize, PagingMetaData, PagingScheme, Sv39, Sv48, Sv57};
pub use pmp::{AccessContext, PmpAddressMode, PmpEntry, PmpPermissions, PmpUnit, PMP_ENTRY_COUNT};
pub use policy::{check_access, AccessDecision};
pub use privilege::PrivilegeMode;
pub use region::SecureRegion;
pub use token::{Token, TOKEN_SIZE};

/// Convenient glob import of the types needed to assemble a PTStore machine.
pub mod prelude {
    pub use crate::addr::{PhysAddr, PhysPageNum, VirtAddr, VirtPageNum, GIB, KIB, MIB, PAGE_SIZE};
    pub use crate::channel::{AccessKind, Channel};
    pub use crate::error::{AccessError, RegionError, TokenError};
    pub use crate::paging::{PageSize, PagingMetaData, PagingScheme};
    pub use crate::pmp::{AccessContext, PmpPermissions, PmpUnit};
    pub use crate::privilege::PrivilegeMode;
    pub use crate::region::SecureRegion;
    pub use crate::token::Token;
}
