//! Multi-scheme paging metadata: Sv39/Sv48/Sv57 behind one trait.
//!
//! The paper evaluates PTStore on Sv39 only, but nothing in the mechanism
//! — PMP S-bit, PTW origin check, tokens — depends on the number of
//! translation levels. This module makes that scheme-independence a
//! property of the types (the `PageTable64<M, PTE, H>` pattern of
//! page_table_multiarch): [`PagingMetaData`] captures what a scheme *is*
//! (levels, VA/PA widths, `satp` mode encoding, canonical form), the
//! [`Sv39`]/[`Sv48`]/[`Sv57`] markers implement it, and [`PagingScheme`]
//! is the runtime-dispatch mirror the `satp` CSR mode field selects.
//!
//! All RV64 Sv schemes share the same geometry per level: 9-bit VPN
//! slices above a 12-bit page offset, so a leaf at level `n` maps a
//! `4 KiB << (9n)` superpage ([`PageSize`]).

use core::fmt;
use core::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::addr::{VirtAddr, GIB, KIB, MIB, PAGE_SHIFT};

/// Bits of virtual address translated per page-table level (all Sv
/// schemes: 512-entry tables).
pub const BITS_PER_LEVEL: u32 = 9;

/// Compile-time description of one RISC-V paging scheme.
///
/// Implementors are zero-sized markers; code that is generic over the
/// scheme takes `M: PagingMetaData` and reads the constants, while code
/// that follows a runtime `satp` value goes through [`PagingScheme`],
/// whose accessors dispatch onto these same impls.
pub trait PagingMetaData {
    /// Number of translation levels (3 for Sv39, 4 for Sv48, 5 for Sv57).
    const LEVELS: usize;
    /// Significant (sign-extended) virtual-address bits.
    const VA_BITS: u32;
    /// Physical-address bits the PTE PPN field can express.
    const PA_BITS: u32;
    /// The `satp.MODE` encoding selecting this scheme (8, 9, or 10).
    const SATP_MODE: u64;
    /// The scheme's architectural name, lowercase (`"sv39"`, ...).
    const NAME: &'static str;

    /// True when `va` is canonical for this scheme: bits `63..VA_BITS-1`
    /// all equal bit `VA_BITS-1`.
    #[inline]
    fn is_canonical(va: u64) -> bool {
        let upper = (va as i64) >> (Self::VA_BITS - 1);
        upper == 0 || upper == -1
    }
}

/// The 3-level, 39-bit scheme the paper's prototype runs (512 GiB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Sv39;

/// The 4-level, 48-bit scheme (256 TiB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Sv48;

/// The 5-level, 57-bit scheme (128 PiB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Sv57;

impl PagingMetaData for Sv39 {
    const LEVELS: usize = 3;
    const VA_BITS: u32 = 39;
    const PA_BITS: u32 = 56;
    const SATP_MODE: u64 = 8;
    const NAME: &'static str = "sv39";
}

impl PagingMetaData for Sv48 {
    const LEVELS: usize = 4;
    const VA_BITS: u32 = 48;
    const PA_BITS: u32 = 56;
    const SATP_MODE: u64 = 9;
    const NAME: &'static str = "sv48";
}

impl PagingMetaData for Sv57 {
    const LEVELS: usize = 5;
    const VA_BITS: u32 = 57;
    const PA_BITS: u32 = 56;
    const SATP_MODE: u64 = 10;
    const NAME: &'static str = "sv57";
}

/// Runtime selector for the scheme a `satp` value encodes.
///
/// Every accessor dispatches to the corresponding [`PagingMetaData`]
/// impl, so the enum cannot drift from the trait-level definitions.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum PagingScheme {
    /// 3-level Sv39 (the paper's prototype scheme).
    #[default]
    Sv39,
    /// 4-level Sv48.
    Sv48,
    /// 5-level Sv57.
    Sv57,
}

/// Dispatches one associated item of [`PagingMetaData`] by scheme value.
macro_rules! dispatch {
    ($self:expr, $item:ident) => {
        match $self {
            PagingScheme::Sv39 => Sv39::$item,
            PagingScheme::Sv48 => Sv48::$item,
            PagingScheme::Sv57 => Sv57::$item,
        }
    };
}

impl PagingScheme {
    /// Every scheme, in `satp` mode order.
    pub const ALL: [PagingScheme; 3] = [PagingScheme::Sv39, PagingScheme::Sv48, PagingScheme::Sv57];

    /// Number of translation levels.
    #[inline]
    pub const fn levels(self) -> usize {
        dispatch!(self, LEVELS)
    }

    /// The root table's level (`levels - 1`; 2 for Sv39, up to 4 for Sv57).
    #[inline]
    pub const fn root_level(self) -> usize {
        self.levels() - 1
    }

    /// Significant virtual-address bits.
    #[inline]
    pub const fn va_bits(self) -> u32 {
        dispatch!(self, VA_BITS)
    }

    /// Physical-address bits.
    #[inline]
    pub const fn pa_bits(self) -> u32 {
        dispatch!(self, PA_BITS)
    }

    /// The `satp.MODE` encoding of this scheme.
    #[inline]
    pub const fn satp_mode(self) -> u64 {
        dispatch!(self, SATP_MODE)
    }

    /// The scheme's architectural name, lowercase.
    #[inline]
    pub const fn name(self) -> &'static str {
        dispatch!(self, NAME)
    }

    /// Decodes a `satp.MODE` field; `None` for Bare (0) and reserved
    /// encodings.
    #[inline]
    pub fn from_satp_mode(mode: u64) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.satp_mode() == mode)
    }

    /// True when `va` is canonical for this scheme.
    #[inline]
    pub fn is_canonical(self, va: VirtAddr) -> bool {
        match self {
            PagingScheme::Sv39 => Sv39::is_canonical(va.as_u64()),
            PagingScheme::Sv48 => Sv48::is_canonical(va.as_u64()),
            PagingScheme::Sv57 => Sv57::is_canonical(va.as_u64()),
        }
    }
}

impl fmt::Display for PagingScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PagingScheme {
    type Err = UnknownScheme;

    fn from_str(s: &str) -> Result<Self, UnknownScheme> {
        Self::ALL
            .into_iter()
            .find(|scheme| scheme.name() == s)
            .ok_or(UnknownScheme)
    }
}

/// Error parsing a [`PagingScheme`] name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownScheme;

impl fmt::Display for UnknownScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("unknown paging scheme (expected sv39, sv48, or sv57)")
    }
}

impl std::error::Error for UnknownScheme {}

/// The translation granules a leaf PTE can map in this model's kernel.
///
/// The walker itself accepts a leaf at *any* non-zero level (e.g. a
/// 512 GiB Sv48 level-3 leaf); this enum names the sizes the kernel's
/// mapping API hands out, which is what the lint's exhaustiveness rule
/// and the huge-page workloads speak in.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum PageSize {
    /// A 4 KiB base page (level-0 leaf).
    #[default]
    Size4K,
    /// A 2 MiB superpage (level-1 leaf).
    Size2M,
    /// A 1 GiB superpage (level-2 leaf).
    Size1G,
}

impl PageSize {
    /// Every mappable size, smallest first.
    pub const ALL: [PageSize; 3] = [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G];

    /// The size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => 4 * KIB,
            PageSize::Size2M => 2 * MIB,
            PageSize::Size1G => GIB,
        }
    }

    /// The page-table level whose leaf maps this size.
    #[inline]
    pub const fn level(self) -> usize {
        match self {
            PageSize::Size4K => 0,
            PageSize::Size2M => 1,
            PageSize::Size1G => 2,
        }
    }

    /// How many 4 KiB pages this granule spans.
    #[inline]
    pub const fn span_pages(self) -> u64 {
        self.bytes() >> PAGE_SHIFT
    }

    /// The size mapped by a leaf at `level`, when it has a name here.
    #[inline]
    pub fn of_level(level: usize) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.level() == level)
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PageSize::Size4K => "4KiB",
            PageSize::Size2M => "2MiB",
            PageSize::Size1G => "1GiB",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_constants_match_the_privileged_spec() {
        assert_eq!(PagingScheme::Sv39.levels(), 3);
        assert_eq!(PagingScheme::Sv48.levels(), 4);
        assert_eq!(PagingScheme::Sv57.levels(), 5);
        assert_eq!(PagingScheme::Sv39.satp_mode(), 8);
        assert_eq!(PagingScheme::Sv48.satp_mode(), 9);
        assert_eq!(PagingScheme::Sv57.satp_mode(), 10);
        for s in PagingScheme::ALL {
            // 12-bit offset + 9 bits per level = the VA width.
            assert_eq!(
                PAGE_SHIFT + BITS_PER_LEVEL * s.levels() as u32,
                s.va_bits(),
                "{s}"
            );
            assert_eq!(s.pa_bits(), 56, "{s}");
            assert_eq!(s.root_level(), s.levels() - 1, "{s}");
        }
    }

    #[test]
    fn satp_mode_round_trips() {
        for s in PagingScheme::ALL {
            assert_eq!(PagingScheme::from_satp_mode(s.satp_mode()), Some(s));
        }
        assert_eq!(PagingScheme::from_satp_mode(0), None); // Bare
        assert_eq!(PagingScheme::from_satp_mode(11), None); // reserved
    }

    #[test]
    fn names_parse_and_display() {
        for s in PagingScheme::ALL {
            assert_eq!(s.name().parse::<PagingScheme>(), Ok(s));
        }
        assert!("sv64".parse::<PagingScheme>().is_err());
        assert_eq!(
            UnknownScheme.to_string(),
            "unknown paging scheme (expected sv39, sv48, or sv57)"
        );
    }

    #[test]
    fn canonical_widens_with_the_scheme() {
        // The classic Sv39 non-canonical probe is canonical under Sv48+.
        let probe = VirtAddr::new(0x0000_0040_0000_0000);
        assert!(!PagingScheme::Sv39.is_canonical(probe));
        assert!(PagingScheme::Sv48.is_canonical(probe));
        assert!(PagingScheme::Sv57.is_canonical(probe));
        // The kernel high half is canonical everywhere.
        let kernel = VirtAddr::new(0xffff_ffc0_0000_0000);
        for s in PagingScheme::ALL {
            assert!(s.is_canonical(kernel), "{s}");
            assert!(s.is_canonical(VirtAddr::new(0)), "{s}");
        }
        // Just past the sign-extension boundary is never canonical.
        assert!(!PagingScheme::Sv48.is_canonical(VirtAddr::new(0x0001_0000_0000_0000)));
        assert!(!PagingScheme::Sv57.is_canonical(VirtAddr::new(0x0200_0000_0000_0000)));
    }

    #[test]
    fn trait_impls_agree_with_enum_dispatch() {
        fn probe<M: PagingMetaData>(s: PagingScheme) {
            assert_eq!(M::LEVELS, s.levels());
            assert_eq!(M::VA_BITS, s.va_bits());
            assert_eq!(M::SATP_MODE, s.satp_mode());
            assert_eq!(M::NAME, s.name());
            assert_eq!(
                M::is_canonical(0x0000_0040_0000_0000),
                s.is_canonical(VirtAddr::new(0x0000_0040_0000_0000))
            );
        }
        probe::<Sv39>(PagingScheme::Sv39);
        probe::<Sv48>(PagingScheme::Sv48);
        probe::<Sv57>(PagingScheme::Sv57);
    }

    #[test]
    fn page_sizes_cover_the_leaf_levels() {
        assert_eq!(PageSize::Size4K.bytes(), 4 * KIB);
        assert_eq!(PageSize::Size2M.bytes(), 2 * MIB);
        assert_eq!(PageSize::Size1G.bytes(), GIB);
        for size in PageSize::ALL {
            assert_eq!(PageSize::of_level(size.level()), Some(size));
            // A leaf at level n spans 512^n base pages.
            assert_eq!(size.span_pages(), 512u64.pow(size.level() as u32));
        }
        assert_eq!(PageSize::of_level(3), None);
        assert_eq!(PageSize::Size2M.to_string(), "2MiB");
    }
}
