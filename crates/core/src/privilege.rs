//! RISC-V privilege modes used by the model.

use core::fmt;

use serde::{Deserialize, Serialize};

/// RISC-V privilege modes (the prototype runs RV64 with M, S, and U modes;
/// paper Table II).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum PrivilegeMode {
    /// User mode: applications, including the attacker-controlled process.
    #[default]
    User,
    /// Supervisor mode: the kernel.
    Supervisor,
    /// Machine mode: the SBI firmware managing PMP entries.
    Machine,
}

impl PrivilegeMode {
    /// Encoding used in `mstatus.MPP` / trap handling.
    #[inline]
    pub const fn encoding(self) -> u64 {
        match self {
            PrivilegeMode::User => 0,
            PrivilegeMode::Supervisor => 1,
            PrivilegeMode::Machine => 3,
        }
    }

    /// Decodes the 2-bit privilege encoding.
    pub const fn from_encoding(bits: u64) -> Option<Self> {
        match bits {
            0 => Some(PrivilegeMode::User),
            1 => Some(PrivilegeMode::Supervisor),
            3 => Some(PrivilegeMode::Machine),
            _ => None,
        }
    }
}

impl fmt::Display for PrivilegeMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PrivilegeMode::User => "U",
            PrivilegeMode::Supervisor => "S",
            PrivilegeMode::Machine => "M",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_round_trip() {
        for m in [
            PrivilegeMode::User,
            PrivilegeMode::Supervisor,
            PrivilegeMode::Machine,
        ] {
            assert_eq!(PrivilegeMode::from_encoding(m.encoding()), Some(m));
        }
        assert_eq!(PrivilegeMode::from_encoding(2), None);
    }

    #[test]
    fn ordering_matches_privilege() {
        assert!(PrivilegeMode::User < PrivilegeMode::Supervisor);
        assert!(PrivilegeMode::Supervisor < PrivilegeMode::Machine);
    }
}
