//! Physical/virtual address newtypes and page-granularity helpers.
//!
//! PTStore's secure-region check is performed on **physical** addresses
//! (§III-C2 of the paper); keeping [`PhysAddr`] and [`VirtAddr`] as distinct
//! types makes it impossible to accidentally feed a virtual address to the
//! PMP, which is exactly the class of confusion the design warns about.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Base-2 kibibyte (1024 bytes).
pub const KIB: u64 = 1024;
/// Base-2 mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// Base-2 gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// log2 of the page size (4 KiB pages, as on every RV64 Sv scheme).
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// A physical memory address.
///
/// ```
/// use ptstore_core::addr::{PhysAddr, PAGE_SIZE};
/// let pa = PhysAddr::new(0x8000_0123);
/// assert_eq!(pa.page_offset(), 0x123);
/// assert_eq!(pa.page_align_down().as_u64() % PAGE_SIZE, 0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(u64);

/// A virtual memory address (39/48/57 significant sign-extended bits,
/// depending on the active [`PagingScheme`](crate::paging::PagingScheme)).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(u64);

/// A physical page number (`PhysAddr >> PAGE_SHIFT`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysPageNum(u64);

/// A virtual page number (`VirtAddr >> PAGE_SHIFT`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtPageNum(u64);

macro_rules! addr_impls {
    ($t:ident) => {
        impl $t {
            /// Wraps a raw address value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw address value.
            #[inline]
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Returns the offset of this address within its page.
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// Rounds down to the containing page boundary.
            #[inline]
            pub const fn page_align_down(self) -> Self {
                Self(self.0 & !(PAGE_SIZE - 1))
            }

            /// Rounds up to the next page boundary (identity when aligned).
            #[inline]
            pub const fn page_align_up(self) -> Self {
                Self((self.0 + PAGE_SIZE - 1) & !(PAGE_SIZE - 1))
            }

            /// True when the address is a multiple of `align` (a power of two).
            #[inline]
            pub const fn is_aligned(self, align: u64) -> bool {
                self.0 & (align - 1) == 0
            }

            /// Byte offset from `base` to `self`.
            ///
            /// # Panics
            /// Panics if `self < base`.
            #[inline]
            pub fn offset_from(self, base: Self) -> u64 {
                self.0
                    .checked_sub(base.0)
                    .expect("offset_from: address below base")
            }

            /// Adds a byte offset, checking for overflow.
            #[inline]
            pub fn checked_add(self, rhs: u64) -> Option<Self> {
                self.0.checked_add(rhs).map(Self)
            }
        }

        impl Add<u64> for $t {
            type Output = Self;
            #[inline]
            fn add(self, rhs: u64) -> Self {
                Self(self.0 + rhs)
            }
        }

        impl AddAssign<u64> for $t {
            #[inline]
            fn add_assign(&mut self, rhs: u64) {
                self.0 += rhs;
            }
        }

        impl Sub<u64> for $t {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: u64) -> Self {
                Self(self.0 - rhs)
            }
        }

        impl From<u64> for $t {
            #[inline]
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$t> for u64 {
            #[inline]
            fn from(a: $t) -> u64 {
                a.0
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }
    };
}

addr_impls!(PhysAddr);
addr_impls!(VirtAddr);

macro_rules! pagenum_impls {
    ($pn:ident, $addr:ident) => {
        impl $pn {
            /// Wraps a raw page number.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw page number.
            #[inline]
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// The base address of this page.
            #[inline]
            pub const fn base_addr(self) -> $addr {
                $addr::new(self.0 << PAGE_SHIFT)
            }
        }

        impl From<$addr> for $pn {
            #[inline]
            fn from(a: $addr) -> Self {
                Self(a.as_u64() >> PAGE_SHIFT)
            }
        }

        impl From<$pn> for $addr {
            #[inline]
            fn from(p: $pn) -> Self {
                p.base_addr()
            }
        }

        impl Add<u64> for $pn {
            type Output = Self;
            #[inline]
            fn add(self, rhs: u64) -> Self {
                Self(self.0 + rhs)
            }
        }

        impl Sub<u64> for $pn {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: u64) -> Self {
                Self(self.0 - rhs)
            }
        }

        impl fmt::Display for $pn {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }
    };
}

pagenum_impls!(PhysPageNum, PhysAddr);
pagenum_impls!(VirtPageNum, VirtAddr);

impl VirtAddr {
    /// Extracts the 9-bit VPN slice for page-table level `level`
    /// (0 = leaf; the root level is `scheme.root_level()`). Every RV64 Sv
    /// scheme uses the same per-level geometry, so this needs no scheme
    /// parameter — only the *number* of meaningful levels differs.
    ///
    /// # Panics
    /// Panics if `level > 4` (beyond Sv57's root).
    #[inline]
    pub fn vpn_slice(self, level: usize) -> u64 {
        assert!(level <= 4, "Sv57 has levels 0..=4");
        (self.0 >> (PAGE_SHIFT as u64 + 9 * level as u64)) & 0x1ff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_alignment_round_trip() {
        let pa = PhysAddr::new(0x8000_1234);
        assert_eq!(pa.page_align_down().as_u64(), 0x8000_1000);
        assert_eq!(pa.page_align_up().as_u64(), 0x8000_2000);
        let aligned = PhysAddr::new(0x8000_2000);
        assert_eq!(aligned.page_align_up(), aligned);
        assert_eq!(aligned.page_align_down(), aligned);
    }

    #[test]
    fn page_number_conversions() {
        let pa = PhysAddr::new(0x8000_3456);
        let ppn = PhysPageNum::from(pa);
        assert_eq!(ppn.as_u64(), 0x8000_3456 >> 12);
        assert_eq!(ppn.base_addr().as_u64(), 0x8000_3000);
    }

    #[test]
    fn vpn_slices_cover_all_sv_levels() {
        // 0b_vvvvvvvvv_wwwwwwwww_xxxxxxxxx_oooooooooooo
        let va = VirtAddr::new((0x1AB << 30) | (0x0CD << 21) | (0x0EF << 12) | 0x123);
        assert_eq!(va.vpn_slice(2), 0x1AB);
        assert_eq!(va.vpn_slice(1), 0x0CD);
        assert_eq!(va.vpn_slice(0), 0x0EF);
        assert_eq!(va.page_offset(), 0x123);
        // The Sv48/Sv57 slices of the same (low) address are zero.
        assert_eq!(va.vpn_slice(3), 0);
        assert_eq!(va.vpn_slice(4), 0);
        // A high Sv57 address exercises the upper slices.
        let high = VirtAddr::new((0x155 << 48) | (0x0AA << 39));
        assert_eq!(high.vpn_slice(4), 0x155);
        assert_eq!(high.vpn_slice(3), 0x0AA);
    }

    #[test]
    fn offset_from_and_arith() {
        let base = PhysAddr::new(0x1000);
        assert_eq!((base + 0x234).offset_from(base), 0x234);
        assert_eq!((base + 0x234) - 0x34, PhysAddr::new(0x1200));
    }

    #[test]
    #[should_panic(expected = "address below base")]
    fn offset_from_underflow_panics() {
        PhysAddr::new(0x100).offset_from(PhysAddr::new(0x200));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(PhysAddr::new(0xdead).to_string(), "0xdead");
        assert_eq!(format!("{:x}", VirtAddr::new(0xbeef)), "beef");
    }
}
