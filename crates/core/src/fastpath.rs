//! Process-wide default switch for the host-side fast paths.
//!
//! The simulator carries two purely-host-side memoizations — the per-page
//! PMP decision cache ([`crate::pmp::PmpUnit`]) and the MMU's direct-mapped
//! micro-TLB — that change wall-clock speed but, by construction, never the
//! modeled cycles, statistics, or verdicts. This module holds the process
//! default consulted when such a unit is constructed, so a harness (e.g.
//! `reproduce --no-fast-path`) can disable every fast path at startup and
//! differential tests can pin fast-on vs fast-off runs against each other.
//! Individual units can still be toggled after construction via their
//! `set_fast_path` methods.

use std::sync::atomic::{AtomicBool, Ordering};

static DEFAULT_ENABLED: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide default for newly constructed fast-path units.
pub fn set_default(enabled: bool) {
    // ptstore-lint: allow(atomics-confinement) — process-wide boolean
    // toggle written once at harness startup, before any kernel exists;
    // it selects host-side memoizations that by construction never change
    // modeled cycles, so no schedule-dependent behavior can result.
    DEFAULT_ENABLED.store(enabled, Ordering::SeqCst);
}

/// Whether newly constructed fast-path units start enabled.
pub fn default_enabled() -> bool {
    // ptstore-lint: allow(atomics-confinement) — read of the startup
    // toggle above; see its justification.
    DEFAULT_ENABLED.load(Ordering::SeqCst)
}
