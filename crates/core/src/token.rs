//! The PTStore token mechanism (paper §III-C3, Fig. 3).
//!
//! A token lives in the secure region and binds a page-table pointer to its
//! *unique legitimate user*: `Token { pt_ptr, user_ptr }`, where `user_ptr`
//! points back at the token-pointer slot inside the owning PCB. The kernel
//! issues a token at process creation, copies it when the page-table pointer
//! is legitimately copied, clears it at process destruction, and validates it
//! every time the page-table pointer is about to be used (e.g. before writing
//! `satp` in `switch_mm`).
//!
//! Because tokens are 8-byte-aligned pointers, all their fields have zero low
//! bits — so even if the walker were pointed at a token, the V (present) bit
//! would be clear and the entry invalid, preventing secure-region data from
//! being reused as page tables (paper §V-E2).

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::PhysAddr;
use crate::error::TokenError;

/// Size of a token in the secure region, in bytes.
pub const TOKEN_SIZE: u64 = 16;

/// A page-table-pointer credential stored in the secure region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Token {
    /// The protected page-table (root) pointer.
    pub pt_ptr: PhysAddr,
    /// Physical address of the token-pointer slot in the owning PCB.
    pub user_ptr: PhysAddr,
}

impl Token {
    /// Creates a token binding `pt_ptr` to the PCB slot at `user_ptr`.
    pub const fn new(pt_ptr: PhysAddr, user_ptr: PhysAddr) -> Self {
        Self { pt_ptr, user_ptr }
    }

    /// The cleared (all-zero) token written by the slab constructor and by
    /// process destruction.
    pub const fn cleared() -> Self {
        Self {
            pt_ptr: PhysAddr::new(0),
            user_ptr: PhysAddr::new(0),
        }
    }

    /// True for a cleared token.
    pub const fn is_cleared(&self) -> bool {
        self.pt_ptr.as_u64() == 0 && self.user_ptr.as_u64() == 0
    }

    /// Serialises to the 16-byte secure-region representation.
    pub fn to_bytes(&self) -> [u8; TOKEN_SIZE as usize] {
        let mut out = [0u8; TOKEN_SIZE as usize];
        out[..8].copy_from_slice(&self.pt_ptr.as_u64().to_le_bytes());
        out[8..].copy_from_slice(&self.user_ptr.as_u64().to_le_bytes());
        out
    }

    /// Deserialises from the 16-byte secure-region representation.
    pub fn from_bytes(bytes: &[u8; TOKEN_SIZE as usize]) -> Self {
        let pt = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let user = u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes"));
        Self {
            pt_ptr: PhysAddr::new(pt),
            user_ptr: PhysAddr::new(user),
        }
    }

    /// Validates the token against the PCB that presented it.
    ///
    /// `pcb_pt_ptr` is the page-table pointer read from the PCB;
    /// `pcb_token_slot` is the physical address of the PCB field holding the
    /// token pointer. The token is valid iff its user pointer points back at
    /// that slot *and* the two page-table pointers match (paper §III-C3).
    ///
    /// # Errors
    /// [`TokenError::Cleared`] for an all-zero token,
    /// [`TokenError::UserPointerMismatch`] when the back-pointer disagrees,
    /// [`TokenError::PageTablePointerMismatch`] when the pt pointers differ.
    pub fn validate(
        &self,
        pcb_pt_ptr: PhysAddr,
        pcb_token_slot: PhysAddr,
    ) -> Result<(), TokenError> {
        if self.is_cleared() {
            return Err(TokenError::Cleared);
        }
        if self.user_ptr != pcb_token_slot {
            return Err(TokenError::UserPointerMismatch);
        }
        if self.pt_ptr != pcb_pt_ptr {
            return Err(TokenError::PageTablePointerMismatch);
        }
        Ok(())
    }

    /// Paper §V-E2: both fields are pointers to 8-byte-aligned objects, so
    /// their low three bits are zero and neither field forms a *valid* PTE
    /// (the V/present bit — bit 0 — is clear). Returns true when that holds.
    pub const fn fields_invalid_as_ptes(&self) -> bool {
        self.pt_ptr.as_u64() & 0b111 == 0 && self.user_ptr.as_u64() & 0b111 == 0
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "token{{pt={}, user={}}}", self.pt_ptr, self.user_ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip() {
        let t = Token::new(PhysAddr::new(0xFC12_3000), PhysAddr::new(0x8000_0040));
        assert_eq!(Token::from_bytes(&t.to_bytes()), t);
        assert_eq!(
            Token::from_bytes(&Token::cleared().to_bytes()),
            Token::cleared()
        );
    }

    #[test]
    fn valid_token_passes() {
        let pcb_slot = PhysAddr::new(0x8000_0040);
        let pt = PhysAddr::new(0xFC12_3000);
        let t = Token::new(pt, pcb_slot);
        t.validate(pt, pcb_slot).unwrap();
    }

    #[test]
    fn reuse_attack_is_caught_by_user_pointer() {
        // Attacker copies a *victim's* pt pointer into their own PCB. The
        // token still points back at the victim's slot, so validation fails.
        let victim_slot = PhysAddr::new(0x8000_0040);
        let attacker_slot = PhysAddr::new(0x8000_1040);
        let pt = PhysAddr::new(0xFC12_3000);
        let victim_token = Token::new(pt, victim_slot);
        assert_eq!(
            victim_token.validate(pt, attacker_slot),
            Err(TokenError::UserPointerMismatch)
        );
    }

    #[test]
    fn swapped_pt_pointer_is_caught() {
        let slot = PhysAddr::new(0x8000_0040);
        let t = Token::new(PhysAddr::new(0xFC12_3000), slot);
        assert_eq!(
            t.validate(PhysAddr::new(0xFC45_6000), slot),
            Err(TokenError::PageTablePointerMismatch)
        );
    }

    #[test]
    fn cleared_token_rejected() {
        let t = Token::cleared();
        assert!(t.is_cleared());
        assert_eq!(
            t.validate(PhysAddr::new(0), PhysAddr::new(0)),
            Err(TokenError::Cleared)
        );
    }

    #[test]
    fn aligned_fields_are_invalid_ptes() {
        let t = Token::new(PhysAddr::new(0xFC12_3000), PhysAddr::new(0x8000_0040));
        assert!(t.fields_invalid_as_ptes());
        // A hypothetical misaligned pointer would violate the property.
        let bad = Token::new(PhysAddr::new(0xFC12_3001), PhysAddr::new(0x8000_0040));
        assert!(!bad.fields_invalid_as_ptes());
    }

    #[test]
    fn display_mentions_both_fields() {
        let t = Token::new(PhysAddr::new(0x1000), PhysAddr::new(0x2000));
        let s = t.to_string();
        assert!(s.contains("0x1000") && s.contains("0x2000"));
    }
}
