//! Error types shared across the PTStore model.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::PhysAddr;
use crate::channel::{AccessKind, Channel};

/// Why a physical memory access was denied.
///
/// These correspond to the *access fault* exceptions the modified BOOM core
/// raises (paper §IV-A1) plus model-level range/alignment errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessError {
    /// A regular instruction touched the secure region (paper Fig. 1, ②).
    SecureRegionDenied {
        /// Faulting physical address.
        addr: PhysAddr,
        /// What the access attempted.
        kind: AccessKind,
    },
    /// `ld.pt`/`sd.pt` touched memory *outside* the secure region — the new
    /// instructions only access the secure region (paper §IV-A1).
    SecureInstructionOutsideRegion {
        /// Faulting physical address.
        addr: PhysAddr,
        /// What the access attempted.
        kind: AccessKind,
    },
    /// The PTW fetched a page table from outside the secure region while
    /// `satp.S` was set (paper Fig. 1, ⑤).
    PtwOutsideRegion {
        /// Faulting physical address of the page-table fetch.
        addr: PhysAddr,
    },
    /// An ordinary PMP permission violation (R/W/X/L rules).
    PmpDenied {
        /// Faulting physical address.
        addr: PhysAddr,
        /// What the access attempted.
        kind: AccessKind,
        /// Which channel issued it.
        channel: Channel,
    },
    /// Access beyond the end of simulated physical memory.
    OutOfRange {
        /// Faulting physical address.
        addr: PhysAddr,
    },
    /// Misaligned multi-byte access.
    Misaligned {
        /// Faulting physical address.
        addr: PhysAddr,
        /// Required alignment in bytes.
        required: u64,
    },
}

impl AccessError {
    /// The faulting physical address.
    pub fn addr(&self) -> PhysAddr {
        match *self {
            AccessError::SecureRegionDenied { addr, .. }
            | AccessError::SecureInstructionOutsideRegion { addr, .. }
            | AccessError::PtwOutsideRegion { addr }
            | AccessError::PmpDenied { addr, .. }
            | AccessError::OutOfRange { addr }
            | AccessError::Misaligned { addr, .. } => addr,
        }
    }

    /// True when this fault was raised by PTStore's secure-region logic (as
    /// opposed to baseline PMP/range checking).
    pub fn is_ptstore_fault(&self) -> bool {
        matches!(
            self,
            AccessError::SecureRegionDenied { .. }
                | AccessError::SecureInstructionOutsideRegion { .. }
                | AccessError::PtwOutsideRegion { .. }
        )
    }

    /// The trace-layer verdict corresponding to this denial. Range and
    /// alignment faults are model-level, not PMP decisions; they map to the
    /// generic denial tag.
    pub fn trace_verdict(&self) -> ptstore_trace::Verdict {
        match self {
            AccessError::SecureRegionDenied { .. } => ptstore_trace::Verdict::SecureRegionDenied,
            AccessError::SecureInstructionOutsideRegion { .. } => {
                ptstore_trace::Verdict::SecureInstructionOutsideRegion
            }
            AccessError::PtwOutsideRegion { .. } => ptstore_trace::Verdict::PtwOutsideRegion,
            AccessError::PmpDenied { .. }
            | AccessError::OutOfRange { .. }
            | AccessError::Misaligned { .. } => ptstore_trace::Verdict::PmpDenied,
        }
    }
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::SecureRegionDenied { addr, kind } => {
                write!(f, "regular {kind} denied inside secure region at {addr}")
            }
            AccessError::SecureInstructionOutsideRegion { addr, kind } => {
                write!(f, "ld.pt/sd.pt {kind} outside secure region at {addr}")
            }
            AccessError::PtwOutsideRegion { addr } => {
                write!(f, "page-table walk outside secure region at {addr}")
            }
            AccessError::PmpDenied {
                addr,
                kind,
                channel,
            } => write!(f, "pmp denied {kind} via {channel} at {addr}"),
            AccessError::OutOfRange { addr } => {
                write!(f, "physical address {addr} out of range")
            }
            AccessError::Misaligned { addr, required } => {
                write!(
                    f,
                    "misaligned access at {addr} (requires {required}-byte alignment)"
                )
            }
        }
    }
}

impl std::error::Error for AccessError {}

/// Errors configuring or resizing the secure region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionError {
    /// Base or size not page-aligned (PMP granule).
    Unaligned,
    /// Zero-sized region.
    Empty,
    /// Base + size overflows the physical address space.
    Overflow,
    /// A boundary update would not keep the region contiguous (PMP requires
    /// contiguous physical addresses; paper §III-C2).
    NotContiguous,
    /// No free PMP entry to hold the region.
    NoPmpEntry,
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RegionError::Unaligned => "secure region base/size must be page-aligned",
            RegionError::Empty => "secure region must be non-empty",
            RegionError::Overflow => "secure region overflows the physical address space",
            RegionError::NotContiguous => "secure region update breaks contiguity",
            RegionError::NoPmpEntry => "no free pmp entry for the secure region",
        })
    }
}

impl std::error::Error for RegionError {}

/// Why token validation failed (paper §III-C3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenError {
    /// The PCB's token pointer does not point into the secure region, so the
    /// "token" could be attacker-controlled normal memory.
    TokenOutsideSecureRegion,
    /// The token's user pointer does not point back at the PCB's token slot.
    UserPointerMismatch,
    /// The page-table pointer in the token differs from the one in the PCB.
    PageTablePointerMismatch,
    /// The token slot is empty (cleared token, e.g. after process exit).
    Cleared,
}

impl fmt::Display for TokenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TokenError::TokenOutsideSecureRegion => "token pointer outside secure region",
            TokenError::UserPointerMismatch => "token user pointer does not match pcb",
            TokenError::PageTablePointerMismatch => "token page-table pointer does not match pcb",
            TokenError::Cleared => "token has been cleared",
        })
    }
}

impl std::error::Error for TokenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_error_addr_and_classification() {
        let e = AccessError::SecureRegionDenied {
            addr: PhysAddr::new(0x1000),
            kind: AccessKind::Write,
        };
        assert_eq!(e.addr(), PhysAddr::new(0x1000));
        assert!(e.is_ptstore_fault());

        let e = AccessError::OutOfRange {
            addr: PhysAddr::new(0x2000),
        };
        assert!(!e.is_ptstore_fault());
    }

    #[test]
    fn displays_nonempty() {
        let errs: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(AccessError::PtwOutsideRegion {
                addr: PhysAddr::new(1),
            }),
            Box::new(RegionError::NotContiguous),
            Box::new(TokenError::UserPointerMismatch),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
