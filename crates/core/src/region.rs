//! The contiguous physical secure region holding page tables and tokens.
//!
//! PMP requires each region to cover contiguous physical addresses (paper
//! §III-C2), so the region is described by a page-aligned `[base, base+size)`
//! interval. The kernel grows it *downward* on demand: it allocates contiguous
//! pages adjacent to the boundary from the normal zone, releases them into the
//! PTStore zone, and lowers the base via the SBI (paper §IV-C1). In the
//! prototype the region sits at the top of physical memory, so growth moves
//! `base` toward lower addresses while `end` stays fixed.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::{PhysAddr, PAGE_SIZE};
use crate::error::RegionError;

/// A contiguous, page-aligned physical memory interval marked secure.
///
/// ```
/// use ptstore_core::{PhysAddr, SecureRegion, MIB};
/// # fn main() -> Result<(), ptstore_core::RegionError> {
/// let r = SecureRegion::new(PhysAddr::new(0xFC00_0000), 64 * MIB)?;
/// assert!(r.contains(PhysAddr::new(0xFC00_1000)));
/// assert!(!r.contains(PhysAddr::new(0xFBFF_F000)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SecureRegion {
    base: PhysAddr,
    size: u64,
}

impl SecureRegion {
    /// Creates a secure region covering `[base, base + size)`.
    ///
    /// # Errors
    /// Returns [`RegionError::Unaligned`] unless both `base` and `size` are
    /// page-aligned, [`RegionError::Empty`] for a zero size, and
    /// [`RegionError::Overflow`] when the end would overflow.
    pub fn new(base: PhysAddr, size: u64) -> Result<Self, RegionError> {
        if !base.is_aligned(PAGE_SIZE) || !size.is_multiple_of(PAGE_SIZE) {
            return Err(RegionError::Unaligned);
        }
        if size == 0 {
            return Err(RegionError::Empty);
        }
        base.as_u64()
            .checked_add(size)
            .ok_or(RegionError::Overflow)?;
        Ok(Self { base, size })
    }

    /// The inclusive start of the region.
    #[inline]
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// The exclusive end of the region.
    #[inline]
    pub fn end(&self) -> PhysAddr {
        self.base + self.size
    }

    /// Region size in bytes.
    #[inline]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Region size in pages.
    #[inline]
    pub fn page_count(&self) -> u64 {
        self.size / PAGE_SIZE
    }

    /// True when `addr` lies inside the region.
    #[inline]
    pub fn contains(&self, addr: PhysAddr) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// True when the whole `[addr, addr+len)` range lies inside the region.
    #[inline]
    pub fn contains_range(&self, addr: PhysAddr, len: u64) -> bool {
        match addr.as_u64().checked_add(len) {
            Some(end) => addr >= self.base && end <= self.end().as_u64(),
            None => false,
        }
    }

    /// Grows the region downward by `bytes`, keeping the end fixed.
    ///
    /// This models the dynamic adjustment of paper §IV-C1: the kernel has just
    /// released `bytes` of contiguous pages ending at the old base into the
    /// PTStore zone, and the boundary moves down to absorb them.
    ///
    /// # Errors
    /// Returns [`RegionError::Unaligned`] for a non-page-multiple `bytes` and
    /// [`RegionError::NotContiguous`] if the new base would underflow.
    pub fn grow_down(&self, bytes: u64) -> Result<Self, RegionError> {
        if !bytes.is_multiple_of(PAGE_SIZE) {
            return Err(RegionError::Unaligned);
        }
        let new_base = self
            .base
            .as_u64()
            .checked_sub(bytes)
            .ok_or(RegionError::NotContiguous)?;
        Ok(Self {
            base: PhysAddr::new(new_base),
            size: self.size + bytes,
        })
    }

    /// Replaces the base boundary, keeping the end fixed.
    ///
    /// # Errors
    /// Returns [`RegionError::Unaligned`] for an unaligned base and
    /// [`RegionError::NotContiguous`] when `new_base` is not below the
    /// current end.
    pub fn with_base(&self, new_base: PhysAddr) -> Result<Self, RegionError> {
        if !new_base.is_aligned(PAGE_SIZE) {
            return Err(RegionError::Unaligned);
        }
        if new_base >= self.end() {
            return Err(RegionError::NotContiguous);
        }
        Ok(Self {
            base: new_base,
            size: self.end().offset_from(new_base),
        })
    }
}

impl fmt::Display for SecureRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}) ({} KiB)",
            self.base,
            self.end(),
            self.size / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MIB;

    #[test]
    fn rejects_bad_geometry() {
        assert_eq!(
            SecureRegion::new(PhysAddr::new(0x123), PAGE_SIZE),
            Err(RegionError::Unaligned)
        );
        assert_eq!(
            SecureRegion::new(PhysAddr::new(0x1000), 100),
            Err(RegionError::Unaligned)
        );
        assert_eq!(
            SecureRegion::new(PhysAddr::new(0x1000), 0),
            Err(RegionError::Empty)
        );
        assert_eq!(
            SecureRegion::new(PhysAddr::new(u64::MAX - PAGE_SIZE + 1), 2 * PAGE_SIZE),
            Err(RegionError::Overflow)
        );
    }

    #[test]
    fn containment_is_half_open() {
        let r = SecureRegion::new(PhysAddr::new(0x10000), 2 * PAGE_SIZE).unwrap();
        assert!(r.contains(PhysAddr::new(0x10000)));
        assert!(r.contains(PhysAddr::new(0x11fff)));
        assert!(!r.contains(PhysAddr::new(0x12000)));
        assert!(!r.contains(PhysAddr::new(0xffff)));
    }

    #[test]
    fn contains_range_edges() {
        let r = SecureRegion::new(PhysAddr::new(0x10000), PAGE_SIZE).unwrap();
        assert!(r.contains_range(PhysAddr::new(0x10000), PAGE_SIZE));
        assert!(!r.contains_range(PhysAddr::new(0x10000), PAGE_SIZE + 1));
        assert!(!r.contains_range(PhysAddr::new(0x10ff8), 16));
        assert!(!r.contains_range(PhysAddr::new(u64::MAX), 2));
    }

    #[test]
    fn grow_down_keeps_end_fixed() {
        let r = SecureRegion::new(PhysAddr::new(0xFC00_0000), 64 * MIB).unwrap();
        let grown = r.grow_down(16 * MIB).unwrap();
        assert_eq!(grown.end(), r.end());
        assert_eq!(grown.size(), 80 * MIB);
        assert_eq!(grown.base(), PhysAddr::new(0xFB00_0000));
    }

    #[test]
    fn with_base_validates() {
        let r = SecureRegion::new(PhysAddr::new(0x20000), 2 * PAGE_SIZE).unwrap();
        assert!(r.with_base(PhysAddr::new(0x20001)).is_err());
        assert_eq!(
            r.with_base(r.end()).unwrap_err(),
            RegionError::NotContiguous
        );
        let moved = r.with_base(PhysAddr::new(0x10000)).unwrap();
        assert_eq!(moved.size(), 0x22000 - 0x10000);
        assert_eq!(moved.end(), r.end());
    }
}
