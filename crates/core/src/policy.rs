//! The distilled PTStore access-control decision procedure.
//!
//! [`PmpUnit::check`](crate::pmp::PmpUnit::check) is the full hardware path;
//! this module exposes the same decision as a pure function of three bits —
//! *is the address in the secure region*, *which channel issued the access*,
//! and *is the walker check armed* — so the security argument of the paper
//! (§III-B, Fig. 1) can be stated, tested, and property-checked in isolation.

use serde::{Deserialize, Serialize};

use crate::channel::Channel;

/// The outcome of the PTStore access-control matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessDecision {
    /// The access proceeds (still subject to baseline PMP R/W/X bits).
    Allow,
    /// Regular instruction inside the secure region (paper Fig. 1, ②).
    DenyRegularInSecure,
    /// `ld.pt`/`sd.pt` outside the secure region (paper §IV-A1).
    DenySecureInstructionOutside,
    /// Walker fetch outside the secure region while `satp.S` is set
    /// (paper Fig. 1, ⑤).
    DenyPtwOutside,
}

impl AccessDecision {
    /// True when the access is permitted.
    pub const fn is_allow(self) -> bool {
        matches!(self, AccessDecision::Allow)
    }
}

/// Evaluates the PTStore access matrix.
///
/// | channel    | in secure region | outside (satp.S=1) | outside (satp.S=0) |
/// |------------|------------------|--------------------|--------------------|
/// | regular    | deny             | allow              | allow              |
/// | ld.pt/sd.pt| allow            | deny               | deny               |
/// | ptw        | allow            | deny               | allow              |
///
/// ```
/// use ptstore_core::{check_access, AccessDecision, Channel};
/// assert!(check_access(Channel::SecurePt, true, true).is_allow());
/// assert_eq!(
///     check_access(Channel::Regular, true, true),
///     AccessDecision::DenyRegularInSecure
/// );
/// ```
pub const fn check_access(
    channel: Channel,
    in_secure_region: bool,
    satp_s: bool,
) -> AccessDecision {
    match (channel, in_secure_region) {
        (Channel::Regular, true) => AccessDecision::DenyRegularInSecure,
        (Channel::Regular, false) => AccessDecision::Allow,
        (Channel::SecurePt, true) => AccessDecision::Allow,
        (Channel::SecurePt, false) => AccessDecision::DenySecureInstructionOutside,
        (Channel::Ptw, true) => AccessDecision::Allow,
        (Channel::Ptw, false) => {
            if satp_s {
                AccessDecision::DenyPtwOutside
            } else {
                AccessDecision::Allow
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full 3×2×2 matrix, written out as the paper's Fig. 1 arrows.
    #[test]
    fn full_matrix() {
        use AccessDecision::*;
        use Channel::*;
        let cases = [
            (Regular, true, true, DenyRegularInSecure),
            (Regular, true, false, DenyRegularInSecure),
            (Regular, false, true, Allow),
            (Regular, false, false, Allow),
            (SecurePt, true, true, Allow),
            (SecurePt, true, false, Allow),
            (SecurePt, false, true, DenySecureInstructionOutside),
            (SecurePt, false, false, DenySecureInstructionOutside),
            (Ptw, true, true, Allow),
            (Ptw, true, false, Allow),
            (Ptw, false, true, DenyPtwOutside),
            (Ptw, false, false, Allow),
        ];
        for (ch, sec, satp_s, want) in cases {
            assert_eq!(
                check_access(ch, sec, satp_s),
                want,
                "{ch} sec={sec} s={satp_s}"
            );
        }
    }

    /// Security invariant: no channel other than ld.pt/sd.pt and the PTW can
    /// ever be allowed into the secure region.
    #[test]
    fn secure_region_exclusivity() {
        for satp_s in [false, true] {
            assert!(!check_access(Channel::Regular, true, satp_s).is_allow());
            assert!(check_access(Channel::SecurePt, true, satp_s).is_allow());
            assert!(check_access(Channel::Ptw, true, satp_s).is_allow());
        }
    }

    /// Security invariant: once satp.S is armed, every page-table fetch the
    /// walker performs outside the region is refused, which is exactly what
    /// stops PT-Injection.
    #[test]
    fn armed_walker_refuses_outside() {
        assert_eq!(
            check_access(Channel::Ptw, false, true),
            AccessDecision::DenyPtwOutside
        );
    }
}
