//! Access kinds and the PTStore access-channel abstraction.
//!
//! In hardware, PTStore distinguishes three ways an access can reach physical
//! memory: a regular load/store/fetch, the dedicated `ld.pt`/`sd.pt`
//! instructions, and the page-table walker. The processor grants the secure
//! region exclusively to the latter two (paper §III-C1). In this model every
//! access carries its originating [`Channel`] so the PMP can apply the same
//! rule.

use core::fmt;

use serde::{Deserialize, Serialize};

/// What an access does to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A data read (regular load, `ld.pt`, or PTW fetch).
    Read,
    /// A data write (regular store, `sd.pt`, or PTW A/D-bit update).
    Write,
    /// An instruction fetch.
    Execute,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Execute => "execute",
        })
    }
}

/// The hardware path an access was issued from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Channel {
    /// Ordinary load/store/fetch instructions. Denied inside the secure
    /// region (paper Fig. 1, arrow 2).
    Regular,
    /// The new `ld.pt`/`sd.pt` instructions. Granted inside the secure region
    /// and *only* there (paper Fig. 1, arrow 4; §III-C2).
    SecurePt,
    /// The page-table walker in the MMU. Once `satp.S` is set, restricted to
    /// the secure region (paper Fig. 1, arrow 5; §IV-A1).
    Ptw,
}

impl Channel {
    /// True for the dedicated page-table access instructions.
    #[inline]
    pub const fn is_secure_instruction(self) -> bool {
        matches!(self, Channel::SecurePt)
    }

    /// True for walker-originated accesses.
    #[inline]
    pub const fn is_walker(self) -> bool {
        matches!(self, Channel::Ptw)
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Channel::Regular => "regular",
            Channel::SecurePt => "ld.pt/sd.pt",
            Channel::Ptw => "ptw",
        })
    }
}

impl From<Channel> for ptstore_trace::Chan {
    fn from(c: Channel) -> Self {
        match c {
            Channel::Regular => ptstore_trace::Chan::Regular,
            Channel::SecurePt => ptstore_trace::Chan::SecurePt,
            Channel::Ptw => ptstore_trace::Chan::Ptw,
        }
    }
}

impl From<AccessKind> for ptstore_trace::Access {
    fn from(k: AccessKind) -> Self {
        match k {
            AccessKind::Read => ptstore_trace::Access::Read,
            AccessKind::Write => ptstore_trace::Access::Write,
            AccessKind::Execute => ptstore_trace::Access::Execute,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_predicates() {
        assert!(Channel::SecurePt.is_secure_instruction());
        assert!(!Channel::Regular.is_secure_instruction());
        assert!(Channel::Ptw.is_walker());
        assert!(!Channel::SecurePt.is_walker());
    }

    #[test]
    fn display_nonempty() {
        for c in [Channel::Regular, Channel::SecurePt, Channel::Ptw] {
            assert!(!c.to_string().is_empty());
        }
        for k in [AccessKind::Read, AccessKind::Write, AccessKind::Execute] {
            assert!(!k.to_string().is_empty());
        }
    }
}
