//! Differential property tests for the PMP per-page match cache.
//!
//! The epoch-tagged page-match cache is a host-side memoization of the
//! priority scan over the eight PMP entries. It must be invisible: for any
//! interleaving of `pmpcfg`/`pmpaddr` writes, secure-region installs and
//! in-place updates (the `adjust_secure_region` path), and access checks,
//! the cached unit must return byte-identical verdicts — including the
//! exact `AccessError` variant — to an uncached one. Entry ranges are drawn
//! so that TOR/NA4/NAPOT boundaries frequently land *inside* a page, which
//! is exactly the case the cache must refuse to summarize (`Mixed` pages).

use proptest::prelude::*;
use ptstore_core::prelude::*;
use ptstore_core::{PmpEntry, PmpPermissions};

/// Probe space: a few MiB so that the handful of PMP entries cover a
/// meaningful fraction and both match and no-match cases are common.
const ADDR_SPACE: u64 = 1 << 22;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Raw CSR write: arbitrary cfg byte (mode, R/W/X, S, L) + pmpaddr.
    SetEntry { index: usize, cfg: u8, addr: u64 },
    /// `install_secure_region` — allocates the dedicated S entry.
    Install { base_page: u64, pages: u64 },
    /// `update_secure_region` — the `adjust_secure_region` hot path.
    Update { base_page: u64, pages: u64 },
    /// An access check; must yield identical `Result<(), AccessError>`.
    Check {
        addr: u64,
        kind: AccessKind,
        channel: Channel,
        satp_s: bool,
    },
    /// Secure-region membership probe.
    IsSecure { addr: u64 },
}

fn arb_kind() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::Read),
        Just(AccessKind::Write),
        Just(AccessKind::Execute),
    ]
}

fn arb_channel() -> impl Strategy<Value = Channel> {
    prop_oneof![
        Just(Channel::Regular),
        Just(Channel::SecurePt),
        Just(Channel::Ptw),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0usize..8, any::<u8>(), 0..(ADDR_SPACE >> 2))
            .prop_map(|(index, cfg, addr)| Op::SetEntry { index, cfg, addr }),
        1 => (1u64..256, 1u64..128)
            .prop_map(|(base_page, pages)| Op::Install { base_page, pages }),
        2 => (1u64..256, 1u64..128)
            .prop_map(|(base_page, pages)| Op::Update { base_page, pages }),
        10 => (0..ADDR_SPACE, arb_kind(), arb_channel(), any::<bool>())
            .prop_map(|(addr, kind, channel, satp_s)| Op::Check {
                addr: addr & !0b111,
                kind,
                channel,
                satp_s,
            }),
        2 => (0..ADDR_SPACE).prop_map(|addr| Op::IsSecure { addr }),
    ]
}

/// Applies one op; returns a comparable summary of any observable output.
fn apply(pmp: &mut PmpUnit, op: Op) -> Result<bool, AccessError> {
    match op {
        Op::SetEntry { index, cfg, addr } => {
            pmp.set_entry(
                index,
                PmpEntry {
                    cfg: PmpPermissions::from_bits(cfg),
                    addr,
                },
            );
            Ok(true)
        }
        Op::Install { base_page, pages } => {
            let region = SecureRegion::new(PhysAddr::new(base_page * PAGE_SIZE), pages * PAGE_SIZE)
                .expect("page-aligned region");
            Ok(pmp.install_secure_region(&region).is_ok())
        }
        Op::Update { base_page, pages } => {
            let region = SecureRegion::new(PhysAddr::new(base_page * PAGE_SIZE), pages * PAGE_SIZE)
                .expect("page-aligned region");
            Ok(pmp.update_secure_region(&region).is_ok())
        }
        Op::Check {
            addr,
            kind,
            channel,
            satp_s,
        } => pmp
            .check(
                PhysAddr::new(addr),
                kind,
                channel,
                AccessContext::supervisor(satp_s),
            )
            .map(|()| true),
        Op::IsSecure { addr } => Ok(pmp.is_secure(PhysAddr::new(addr))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// A cached and an uncached PMP unit agree on every check verdict
    /// (down to the error variant), every `is_secure` probe, and every
    /// region-install result across random interleavings of CSR writes,
    /// secure-region installs/updates, and checks.
    #[test]
    fn match_cache_never_diverges_from_scan(
        ops in proptest::collection::vec(arb_op(), 1..64),
    ) {
        let mut fast = PmpUnit::new();
        fast.set_fast_path(true);
        let mut slow = PmpUnit::new();
        slow.set_fast_path(false);
        prop_assert!(fast.fast_path());
        prop_assert!(!slow.fast_path());

        for (i, &op) in ops.iter().enumerate() {
            let a = apply(&mut fast, op);
            let b = apply(&mut slow, op);
            prop_assert_eq!(a, b, "op {} = {:?} diverged", i, op);
        }

        // The units themselves must still be architecturally equal (the
        // match cache is excluded from PartialEq by construction).
        prop_assert_eq!(&fast, &slow);

        // Dense final sweep: every page the random checks missed, probed
        // at the page base and at an offset, through every channel.
        for page in 0..(ADDR_SPACE / PAGE_SIZE) {
            for offset in [0u64, 0x40] {
                let pa = PhysAddr::new(page * PAGE_SIZE + offset);
                for channel in [Channel::Regular, Channel::SecurePt, Channel::Ptw] {
                    let ctx = AccessContext::supervisor(true);
                    prop_assert_eq!(
                        fast.check(pa, AccessKind::Write, channel, ctx),
                        slow.check(pa, AccessKind::Write, channel, ctx),
                        "final sweep {:#x} {} diverged", pa.as_u64(), channel
                    );
                }
                prop_assert_eq!(fast.is_secure(pa), slow.is_secure(pa));
            }
        }
    }

    /// The cache stays coherent when the secure region is repeatedly
    /// resized in place via `update_secure_region` between checks — the
    /// exact shape of the kernel's `adjust_secure_region` migration loop.
    #[test]
    fn region_growth_invalidates_cached_pages(
        base_page in 1u64..64,
        sizes in proptest::collection::vec(1u64..64, 2..10),
        probes in proptest::collection::vec(0..ADDR_SPACE, 8..32),
    ) {
        let mut fast = PmpUnit::new();
        fast.set_fast_path(true);
        let mut slow = PmpUnit::new();
        slow.set_fast_path(false);

        let first = SecureRegion::new(
            PhysAddr::new(base_page * PAGE_SIZE),
            sizes[0] * PAGE_SIZE,
        ).expect("aligned");
        prop_assert_eq!(
            fast.install_secure_region(&first).is_ok(),
            slow.install_secure_region(&first).is_ok()
        );

        for &pages in &sizes[1..] {
            // Warm the cache on pages near the moving boundary...
            for &probe in &probes {
                let pa = PhysAddr::new(probe & !0b111);
                let ctx = AccessContext::supervisor(true);
                prop_assert_eq!(
                    fast.check(pa, AccessKind::Read, Channel::Regular, ctx),
                    slow.check(pa, AccessKind::Read, Channel::Regular, ctx),
                    "pre-update probe {:#x}", pa.as_u64()
                );
            }
            // ...then move the boundary and require every verdict to track.
            let region = SecureRegion::new(
                PhysAddr::new(base_page * PAGE_SIZE),
                pages * PAGE_SIZE,
            ).expect("aligned");
            prop_assert_eq!(
                fast.update_secure_region(&region).is_ok(),
                slow.update_secure_region(&region).is_ok()
            );
            for &probe in &probes {
                let pa = PhysAddr::new(probe & !0b111);
                for channel in [Channel::Regular, Channel::SecurePt, Channel::Ptw] {
                    let ctx = AccessContext::supervisor(true);
                    prop_assert_eq!(
                        fast.check(pa, AccessKind::Write, channel, ctx),
                        slow.check(pa, AccessKind::Write, channel, ctx),
                        "post-update probe {:#x} {}", pa.as_u64(), channel
                    );
                }
                prop_assert_eq!(fast.is_secure(pa), slow.is_secure(pa));
            }
        }
    }
}
