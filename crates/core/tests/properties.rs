//! Property-based tests for the PTStore core invariants.

use proptest::prelude::*;
use ptstore_core::prelude::*;
use ptstore_core::{check_access, AccessDecision, PmpEntry};

const PAGE: u64 = PAGE_SIZE;

prop_compose! {
    /// An arbitrary page-aligned secure region inside a 4 GiB address space.
    fn arb_region()(base_page in 1u64..1_000_000, pages in 1u64..10_000) -> SecureRegion {
        SecureRegion::new(PhysAddr::new(base_page * PAGE), pages * PAGE).unwrap()
    }
}

proptest! {
    /// The PMP check and the distilled policy function always agree about
    /// PTStore-specific denials.
    #[test]
    fn pmp_matches_policy(region in arb_region(), addr in 0u64..(1u64 << 42), satp_s in any::<bool>()) {
        let mut pmp = PmpUnit::new();
        pmp.install_secure_region(&region).unwrap();
        let pa = PhysAddr::new(addr);
        let in_region = region.contains(pa);
        let ctx = AccessContext::supervisor(satp_s);
        for channel in [Channel::Regular, Channel::SecurePt, Channel::Ptw] {
            let decision = check_access(channel, in_region, satp_s);
            let hw = pmp.check(pa, AccessKind::Read, channel, ctx);
            prop_assert_eq!(
                decision.is_allow(),
                hw.is_ok(),
                "channel={} addr={:#x} in_region={} satp_s={}",
                channel, addr, in_region, satp_s
            );
            if let Err(e) = hw {
                let want = match decision {
                    AccessDecision::DenyRegularInSecure =>
                        matches!(e, AccessError::SecureRegionDenied { .. }),
                    AccessDecision::DenySecureInstructionOutside =>
                        matches!(e, AccessError::SecureInstructionOutsideRegion { .. }),
                    AccessDecision::DenyPtwOutside =>
                        matches!(e, AccessError::PtwOutsideRegion { .. }),
                    AccessDecision::Allow => false,
                };
                prop_assert!(want, "error kind mismatch: {:?} vs {:?}", decision, e);
            }
        }
    }

    /// Growing the secure region downward preserves the end boundary, keeps
    /// the region contiguous, and never *shrinks* coverage: every address
    /// secure before stays secure after.
    #[test]
    fn grow_down_is_monotone(region in arb_region(), extra_pages in 1u64..1_000, probe in 0u64..(1u64 << 42)) {
        prop_assume!(region.base().as_u64() >= extra_pages * PAGE);
        let grown = region.grow_down(extra_pages * PAGE).unwrap();
        prop_assert_eq!(grown.end(), region.end());
        prop_assert_eq!(grown.size(), region.size() + extra_pages * PAGE);
        let pa = PhysAddr::new(probe);
        if region.contains(pa) {
            prop_assert!(grown.contains(pa));
        }
    }

    /// Token serialisation round-trips, and validation accepts exactly the
    /// (pt, slot) pair the token was issued for.
    #[test]
    fn token_round_trip_and_binding(
        pt in (1u64..u64::MAX / 16).prop_map(|x| x * 8),
        slot in (1u64..u64::MAX / 16).prop_map(|x| x * 8),
        other_pt in (1u64..u64::MAX / 16).prop_map(|x| x * 8),
        other_slot in (1u64..u64::MAX / 16).prop_map(|x| x * 8),
    ) {
        let t = Token::new(PhysAddr::new(pt), PhysAddr::new(slot));
        prop_assert_eq!(Token::from_bytes(&t.to_bytes()), t);
        prop_assert!(t.fields_invalid_as_ptes());
        prop_assert!(t.validate(PhysAddr::new(pt), PhysAddr::new(slot)).is_ok());
        if other_slot != slot {
            prop_assert!(t.validate(PhysAddr::new(pt), PhysAddr::new(other_slot)).is_err());
        }
        if other_pt != pt {
            prop_assert!(t.validate(PhysAddr::new(other_pt), PhysAddr::new(slot)).is_err());
        }
    }

    /// pmpaddr encoding round-trips for 4-byte-aligned addresses.
    #[test]
    fn pmpaddr_round_trip(addr in (0u64..(1u64 << 54)).prop_map(|x| x & !0b11)) {
        let pa = PhysAddr::new(addr);
        prop_assert_eq!(PmpEntry::decode_addr(PmpEntry::encode_addr(pa)), pa);
    }

    /// Page alignment helpers are idempotent and ordered.
    #[test]
    fn alignment_laws(addr in 0u64..(u64::MAX - PAGE)) {
        let pa = PhysAddr::new(addr);
        let down = pa.page_align_down();
        let up = pa.page_align_up();
        prop_assert!(down <= pa && pa <= up);
        prop_assert_eq!(down.page_align_down(), down);
        prop_assert_eq!(up.page_align_up(), up);
        prop_assert!(up.as_u64() - down.as_u64() <= PAGE);
    }
}

proptest! {
    /// For naturally aligned power-of-two regions, a NAPOT encoding and a
    /// TOR pair must produce identical PMP matching decisions — the two
    /// address modes are interchangeable representations.
    #[test]
    fn napot_and_tor_agree(
        size_log2 in 3u32..24,
        base_mult in 1u64..1000,
        probe in 0u64..(1u64 << 36),
    ) {
        use ptstore_core::{PmpAddressMode, PmpEntry, PmpPermissions};
        let size = 1u64 << size_log2;
        let base = base_mult * size; // naturally aligned
        // NAPOT unit.
        let mut napot = PmpUnit::new();
        napot.set_entry(
            0,
            PmpEntry {
                cfg: PmpPermissions::new()
                    .with_read()
                    .with_write()
                    .with_secure()
                    .with_mode(PmpAddressMode::Napot),
                addr: (base >> 2) | ((size >> 3) - 1),
            },
        );
        // TOR pair.
        let mut tor = PmpUnit::new();
        tor.set_entry(0, PmpEntry {
            cfg: PmpPermissions::new(),
            addr: base >> 2,
        });
        tor.set_entry(
            1,
            PmpEntry {
                cfg: PmpPermissions::new()
                    .with_read()
                    .with_write()
                    .with_secure()
                    .with_mode(PmpAddressMode::Tor),
                addr: (base + size) >> 2,
            },
        );
        let pa = PhysAddr::new(probe & !0b111);
        let ctx = AccessContext::supervisor(true);
        for channel in [Channel::Regular, Channel::SecurePt, Channel::Ptw] {
            let a = napot.check(pa, AccessKind::Write, channel, ctx).is_ok();
            let b = tor.check(pa, AccessKind::Write, channel, ctx).is_ok();
            prop_assert_eq!(
                a, b,
                "napot/tor disagree at {:#x} (region {:#x}+{:#x}, {})",
                pa.as_u64(), base, size, channel
            );
        }
        // And both agree on secure-region membership.
        prop_assert_eq!(napot.is_secure(pa), tor.is_secure(pa));
    }
}
