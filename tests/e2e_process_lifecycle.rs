//! End-to-end process lifecycle under PTStore: deep fork trees, exec chains,
//! pipes across forks, CoW integrity, and token hygiene throughout.

use ptstore::kernel::{Kernel, KernelConfig};
use ptstore::prelude::*;

fn boot() -> Kernel {
    Kernel::boot(
        KernelConfig::cfi_ptstore()
            .with_mem_size(256 * MIB)
            .with_initial_secure_size(16 * MIB),
    )
    .expect("boot")
}

#[test]
fn deep_fork_tree() {
    let mut k = boot();
    // Chain: init forks A, A forks B, B forks C...
    let mut chain = vec![1u32];
    for _ in 0..10 {
        let child = k.sys_fork().expect("fork");
        k.do_switch_to(child).expect("switch");
        chain.push(child);
    }
    // Unwind from the leaf: each exits, parent reaps.
    for i in (1..chain.len()).rev() {
        assert_eq!(k.current_pid(), chain[i]);
        k.sys_exit(i as i32).expect("exit");
        // exit schedules somewhere; force the parent.
        k.do_switch_to(chain[i - 1]).expect("switch to parent");
        let (pid, code) = k.sys_wait().expect("wait");
        assert_eq!(pid, chain[i]);
        assert_eq!(code, i as i32);
    }
    assert_eq!(k.procs.len(), 1);
    assert_eq!(k.stats.token_failures, 0);
}

#[test]
fn exec_chain_reuses_address_space_safely() {
    let mut k = boot();
    let before_pt = k.stats.pt_pages_live;
    for _ in 0..25 {
        k.sys_exec().expect("exec");
    }
    // exec tears down and rebuilds user mappings; PT pages must not leak
    // (the same intermediate tables get reused or freed).
    assert!(k.stats.pt_pages_live <= before_pt + 4);
    k.sys_touch(VirtAddr::new(0x1_0000), false)
        .expect("text mapped");
}

#[test]
fn pipe_across_fork() {
    let mut k = boot();
    let (r, w) = k.sys_pipe().expect("pipe");
    let child = k.sys_fork().expect("fork");
    // Parent writes...
    k.sys_write(w, b"from parent").expect("write");
    // ...child reads.
    k.do_switch_to(child).expect("switch");
    let data = k.sys_read(r, 64).expect("read");
    assert_eq!(&data, b"from parent");
    k.sys_exit(0).expect("exit");
    k.sys_wait().expect("wait");
    // Parent's ends still work after the child's fds were closed at exit.
    k.sys_write(w, b"again").expect("write");
    assert_eq!(k.sys_read(r, 5).expect("read"), b"again");
}

#[test]
fn cow_isolation_is_real_memory_isolation() {
    let mut k = boot();
    k.sys_brk(ptstore::kernel::pagetable::USER_HEAP_BASE + PAGE_SIZE)
        .expect("brk");
    let heap = VirtAddr::new(ptstore::kernel::pagetable::USER_HEAP_BASE);
    k.user_write_u64(heap, 0x1111).expect("parent init");

    let child = k.sys_fork().expect("fork");
    // Parent changes the value after fork.
    k.user_write_u64(heap, 0x2222).expect("parent write");
    assert_eq!(k.user_read_u64(heap).expect("parent read"), 0x2222);

    // Child still sees the pre-fork value.
    k.do_switch_to(child).expect("switch");
    assert_eq!(k.user_read_u64(heap).expect("child read"), 0x1111);
    // Child writes its own value; parent unaffected.
    k.user_write_u64(heap, 0x3333).expect("child write");
    k.do_switch_to(1).expect("switch back");
    assert_eq!(k.user_read_u64(heap).expect("parent read"), 0x2222);
}

#[test]
fn hundreds_of_processes_round_robin() {
    let mut k = boot();
    let children: Vec<_> = (0..50).map(|_| k.sys_fork().expect("fork")).collect();
    // Round-robin through everyone several times; every switch validates a
    // token against the PCB in attackable memory.
    for _ in 0..4 {
        for &c in &children {
            k.do_switch_to(c).expect("switch");
        }
        k.do_switch_to(1).expect("back to init");
    }
    assert_eq!(k.stats.token_failures, 0);
    assert!(k.stats.token_validations >= 200);
    // Clean teardown.
    for &c in &children {
        k.do_switch_to(c).expect("switch");
        k.sys_exit(0).expect("exit");
    }
    for _ in &children {
        k.sys_wait().expect("wait");
    }
    assert_eq!(k.procs.len(), 1);
}

#[test]
fn secure_region_contains_every_pt_page_always() {
    let mut k = boot();
    let region = k.secure_region().expect("region");
    let children: Vec<_> = (0..20).map(|_| k.sys_fork().expect("fork")).collect();
    for &c in &children {
        let p = k.procs.get(c).expect("child");
        for &pt in &p.aspace.pt_pages {
            assert!(
                region.contains(pt.base_addr()),
                "pt page {pt} of pid {c} outside secure region"
            );
        }
    }
}
