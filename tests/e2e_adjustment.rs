//! End-to-end dynamic secure-region adjustment (§IV-C1): growth under
//! pressure, contiguity, PMP synchronisation, migration, and failure modes.

use ptstore::kernel::{Kernel, KernelConfig, KernelError};
use ptstore::prelude::*;

fn boot(initial: u64, chunk: u64) -> Kernel {
    let mut cfg = KernelConfig::cfi_ptstore()
        .with_mem_size(512 * MIB)
        .with_initial_secure_size(initial);
    cfg.adjust_chunk = chunk;
    Kernel::boot(cfg).expect("boot")
}

#[test]
fn region_grows_contiguously_under_pressure() {
    let mut k = boot(MIB, MIB);
    let region0 = k.secure_region().expect("region");
    let mut sizes = vec![region0.size()];
    let mut children = Vec::new();
    for _ in 0..800 {
        children.push(k.sys_fork().expect("fork"));
        let size = k.secure_region().expect("region").size();
        if size != *sizes.last().expect("non-empty") {
            sizes.push(size);
        }
    }
    assert!(sizes.len() > 2, "multiple adjustments: {sizes:?}");
    // Monotone growth, fixed end, PMP in sync.
    assert!(sizes.windows(2).all(|w| w[1] > w[0]));
    let now = k.secure_region().expect("region");
    assert_eq!(now.end(), region0.end());
    assert_eq!(k.bus.secure_region(), Some(now));
    // Contiguity: the PTStore zone's span equals the region exactly.
    assert!(k.pt_area_free_pages().expect("zone") <= now.page_count());
}

#[test]
fn adjustment_accounting_matches_region_growth() {
    let mut k = boot(MIB, 2 * MIB);
    for _ in 0..800 {
        k.sys_fork().expect("fork");
    }
    let grown = k.secure_region().expect("region").size() - MIB;
    assert_eq!(grown, k.stats.adjustments * 2 * MIB);
}

#[test]
fn adjusted_pages_are_immediately_protected() {
    let mut k = boot(MIB, MIB);
    // Burn the initial region.
    while k.stats.adjustments == 0 {
        k.sys_fork().expect("fork");
    }
    let region = k.secure_region().expect("region");
    // A page in the newly absorbed chunk (just above the new base).
    let fresh = region.base() + 0x100;
    let via = k.direct_map(fresh);
    assert!(
        k.attacker_write_u64(via, 0xbad).is_err(),
        "adjusted pages must be PMP-protected immediately"
    );
}

#[test]
fn disabled_adjustment_fails_loudly_not_silently() {
    let mut cfg = KernelConfig::cfi_ptstore_no_adjust()
        .with_mem_size(512 * MIB)
        .with_initial_secure_size(MIB);
    cfg.adjustment_enabled = false;
    let mut k = Kernel::boot(cfg).expect("boot");
    let mut last = Ok(0);
    for _ in 0..5_000 {
        last = k.sys_fork();
        if last.is_err() {
            break;
        }
    }
    assert_eq!(last.unwrap_err(), KernelError::OutOfMemory);
    assert_eq!(k.stats.adjustments, 0);
    // The kernel is still alive and consistent after OOM.
    k.sys_null().expect("kernel survives OOM");
    assert_eq!(k.secure_region().expect("region").size(), MIB);
}

#[test]
fn migration_preserves_user_data() {
    // Force migrations: fill the normal zone's top with movable user pages,
    // then trigger adjustment.
    let mut k = boot(MIB, MIB);
    // Allocate a lot of user memory so some pages sit near the boundary.
    let total_pages = 2000u64;
    let addr = k.sys_mmap(total_pages * PAGE_SIZE).expect("mmap");
    for i in 0..total_pages {
        let va = VirtAddr::new(addr.as_u64() + i * PAGE_SIZE);
        k.sys_touch(va, true).expect("touch");
        k.user_write_u64(va, 0xC0FFEE00 + i).expect("stamp");
    }
    // Fork storm to force several adjustments.
    for _ in 0..400 {
        k.sys_fork().expect("fork");
    }
    assert!(k.stats.adjustments > 0);
    // Every stamped value must still read back, wherever the pages went.
    // (CoW made them read-only; reads are what must be stable.)
    for i in 0..total_pages {
        let va = VirtAddr::new(addr.as_u64() + i * PAGE_SIZE);
        assert_eq!(
            k.user_read_u64(va).expect("read"),
            0xC0FFEE00 + i,
            "page {i} lost its data (migrated={})",
            k.stats.migrated_pages
        );
    }
}

#[test]
fn stress_then_reuse_the_grown_region() {
    let mut k = boot(MIB, MIB);
    // Grow.
    let children: Vec<_> = (0..500).map(|_| k.sys_fork().expect("fork")).collect();
    let adjustments_after_growth = k.stats.adjustments;
    assert!(adjustments_after_growth > 0);
    // Shrink the population.
    for &c in &children {
        k.do_switch_to(c).expect("switch");
        k.sys_exit(0).expect("exit");
    }
    while k.sys_wait().is_ok() {}
    // Re-grow into the already-enlarged region: no new adjustments needed.
    for _ in 0..500 {
        k.sys_fork().expect("fork");
    }
    assert_eq!(
        k.stats.adjustments, adjustments_after_growth,
        "the grown region is reused without further adjustment"
    );
}
