//! End-to-end §V-C: the LTP-style regression diff across *all* kernel
//! configurations — the modified kernels must behave exactly like the
//! original.

use ptstore::kernel::{DefenseMode, Kernel, KernelConfig};
use ptstore::prelude::MIB;
use ptstore::workloads::regression::{diff_outputs, run_suite};

fn suite_for(cfg: KernelConfig) -> Vec<ptstore::workloads::regression::TestOutput> {
    run_suite(move || {
        Kernel::boot(
            cfg.with_mem_size(256 * MIB)
                .with_initial_secure_size(16 * MIB),
        )
        .expect("boot")
    })
}

#[test]
fn ptstore_kernel_has_no_behavioural_deviation() {
    let original = suite_for(KernelConfig::cfi());
    let ptstore = suite_for(KernelConfig::cfi_ptstore());
    let diff = diff_outputs(&original, &ptstore);
    assert!(
        diff.is_empty(),
        "PTStore changed observable behaviour: {diff:#?}"
    );
}

#[test]
fn cfi_itself_changes_nothing_observable() {
    let plain = suite_for(KernelConfig::baseline());
    let cfi = suite_for(KernelConfig::cfi());
    assert!(diff_outputs(&plain, &cfi).is_empty());
}

#[test]
fn baseline_defenses_also_preserve_behaviour() {
    let original = suite_for(KernelConfig::cfi());
    for defense in [DefenseMode::PtRand, DefenseMode::VirtualIsolation] {
        let modified = suite_for(KernelConfig::cfi().with_defense(defense));
        let diff = diff_outputs(&original, &modified);
        assert!(diff.is_empty(), "{defense} deviated: {diff:#?}");
    }
}

#[test]
fn suite_is_reproducible_run_to_run() {
    let a = suite_for(KernelConfig::cfi_ptstore());
    let b = suite_for(KernelConfig::cfi_ptstore());
    assert!(
        diff_outputs(&a, &b).is_empty(),
        "suite must be deterministic"
    );
}
