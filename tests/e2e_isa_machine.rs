//! End-to-end ISA-level checks: the machine, CSR plumbing, and the
//! PTStore instruction semantics driven purely through executed RV64 code.

use ptstore::isa::{csr, AluOp, CsrOp, Inst, LoadOp, SimMachine, StoreOp, TrapCause};
use ptstore::prelude::*;

#[test]
fn secure_region_installed_by_executed_csr_writes() {
    // An M-mode "SBI" program installs the secure region purely through
    // pmpaddr/pmpcfg CSR writes, then proves both sides of the S-bit.
    let mut m = SimMachine::new(128 * MIB);
    let base: u64 = 64 * MIB;
    let end: u64 = 65 * MIB;

    let program = [
        // pmpaddr0 = base >> 2 ; pmpaddr1 = end >> 2 ; pmpcfg0 = TOR|R|W|S @ entry 1
        Inst::Csr {
            op: CsrOp::ReadWrite,
            rd: 0,
            rs1: 5,
            csr: csr::addr::PMPADDR0,
            imm_form: false,
        },
        Inst::Csr {
            op: CsrOp::ReadWrite,
            rd: 0,
            rs1: 6,
            csr: csr::addr::PMPADDR0 + 1,
            imm_form: false,
        },
        Inst::Csr {
            op: CsrOp::ReadWrite,
            rd: 0,
            rs1: 7,
            csr: csr::addr::PMPCFG0,
            imm_form: false,
        },
        // sd.pt into the region, ld.pt back out.
        Inst::Lui {
            rd: 5,
            imm: base as i64,
        },
        Inst::OpImm {
            op: AluOp::Add,
            rd: 6,
            rs1: 0,
            imm: 0x77,
            word: false,
        },
        Inst::SdPt {
            rs1: 5,
            rs2: 6,
            offset: 8,
        },
        Inst::LdPt {
            rd: 10,
            rs1: 5,
            offset: 8,
        },
        Inst::Wfi,
    ];
    m.load_program(0x1000, &program);
    m.cpu.set_reg(5, base >> 2);
    m.cpu.set_reg(6, end >> 2);
    m.cpu.set_reg(7, 0b0010_1011 << 8); // S|TOR|W|R in entry 1's byte
    m.cpu.pc = 0x1000;
    assert_eq!(m.run(100).expect("runs"), None, "clean wfi stop");
    assert_eq!(m.cpu.reg(10), 0x77);
    assert_eq!(m.bus.stats().secure_writes, 1);
    assert_eq!(m.bus.stats().secure_reads, 1);

    // Now a regular load of the same address must trap.
    let mut m2 = m.clone();
    m2.load_program(
        0x2000,
        &[Inst::Load {
            op: LoadOp::D,
            rd: 11,
            rs1: 5,
            offset: 8,
        }],
    );
    m2.cpu.pc = 0x2000;
    let trap = m2.run(10).expect("runs").expect("trap");
    assert_eq!(trap.cause, TrapCause::LoadAccessFault);
}

#[test]
fn user_mode_cannot_use_the_new_instructions() {
    let (mut m, _region) = SimMachine::with_secure_region(128 * MIB);
    // Delegate illegal-instruction to S-mode to observe the cause there.
    m.cpu.csrs.write_raw(csr::addr::MEDELEG, 1 << 2);
    m.cpu.csrs.write_raw(csr::addr::STVEC, 0x8000);
    m.load_program(
        0x1000,
        &[Inst::LdPt {
            rd: 10,
            rs1: 0,
            offset: 0,
        }],
    );
    m.cpu.pc = 0x1000;
    m.cpu.mode = ptstore::core::PrivilegeMode::User;
    let trap = m.run(10).expect("runs").expect("trap");
    assert_eq!(trap.cause, TrapCause::IllegalInstruction);
    assert!(trap.delegated);
    assert_eq!(m.cpu.csrs.read_raw(csr::addr::SCAUSE), 2);
}

#[test]
fn executed_program_walks_secure_page_tables() {
    // Build a 3-level mapping inside the secure region with sd.pt from
    // M-mode, write satp (with the S-bit), drop to S-mode via mret, and
    // access the mapped page — the PTW must fetch from the region.
    let (mut m, region) = SimMachine::with_secure_region(256 * MIB);
    let root = region.base();
    let l1 = region.base() + PAGE_SIZE;
    let l0 = region.base() + 2 * PAGE_SIZE;
    let data_ppn = 0x2000u64; // pa 0x2000000
    let va = 0x40_0000u64; // vpn2=0, vpn1=2, vpn0=0

    // Precompute PTE values host-side; the guest writes them with sd.pt.
    let pte_root = ptstore::mmu::Pte::table(ptstore::core::PhysPageNum::from(l1)).bits();
    let pte_l1 = ptstore::mmu::Pte::table(ptstore::core::PhysPageNum::from(l0)).bits();
    let pte_leaf = ptstore::mmu::Pte::leaf(
        ptstore::core::PhysPageNum::new(data_ppn),
        ptstore::mmu::PteFlags::kernel_rw().with(ptstore::mmu::PteFlags::G),
    )
    .bits();
    let satp = ptstore::mmu::Satp::new(
        ptstore::core::PagingScheme::Sv39,
        ptstore::core::PhysPageNum::from(root),
        1,
        true,
    );

    // Registers seeded host-side; program does the stores + satp + mret.
    let program = [
        Inst::SdPt {
            rs1: 5,
            rs2: 6,
            offset: 0,
        }, // root[0] = l1
        Inst::SdPt {
            rs1: 7,
            rs2: 28,
            offset: 16,
        }, // l1[2] = l0
        Inst::SdPt {
            rs1: 29,
            rs2: 30,
            offset: 0,
        }, // l0[0] = leaf
        Inst::Csr {
            op: CsrOp::ReadWrite,
            rd: 0,
            rs1: 31,
            csr: csr::addr::SATP,
            imm_form: false,
        },
        Inst::Mret,
    ];
    m.load_program(0x1000, &program);
    m.cpu.set_reg(5, root.as_u64());
    m.cpu.set_reg(6, pte_root);
    m.cpu.set_reg(7, l1.as_u64());
    m.cpu.set_reg(28, pte_l1);
    m.cpu.set_reg(29, l0.as_u64());
    m.cpu.set_reg(30, pte_leaf);
    m.cpu.set_reg(31, satp.to_bits());
    // mret returns to S-mode code at `va` + 0 ... but we need S-mode code
    // mapped; instead return to an identity-mapped fetch? The S-mode fetch
    // would be translated. Simplest: map the code page too — reuse the leaf
    // trick by returning to `va` where we place a tiny program in the data
    // page it maps.
    m.cpu.csrs.write_raw(
        csr::addr::MSTATUS,
        ptstore::core::PrivilegeMode::Supervisor.encoding() << 11,
    );
    m.cpu.csrs.write_raw(csr::addr::MEPC, va);
    // Guest S-mode program at pa data_ppn<<12 (what `va` maps to): load the
    // word it previously stored... just wfi after a load through the mapping.
    // Host-side we seed the data page via the raw loader.
    let pa_code = data_ppn << 12;
    // Make the leaf executable too.
    let pte_leaf_x = ptstore::mmu::Pte::leaf(
        ptstore::core::PhysPageNum::new(data_ppn),
        ptstore::mmu::PteFlags::from_bits(
            ptstore::mmu::PteFlags::V
                | ptstore::mmu::PteFlags::R
                | ptstore::mmu::PteFlags::W
                | ptstore::mmu::PteFlags::X
                | ptstore::mmu::PteFlags::A
                | ptstore::mmu::PteFlags::D
                | ptstore::mmu::PteFlags::G,
        ),
    )
    .bits();
    m.cpu.set_reg(30, pte_leaf_x);
    m.load_program(
        pa_code,
        &[
            Inst::OpImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 0,
                imm: 0x123,
                word: false,
            },
            Inst::Wfi,
        ],
    );
    m.cpu.pc = 0x1000;
    assert_eq!(
        m.run(100).expect("no cpu error"),
        None,
        "reached wfi in S-mode"
    );
    assert_eq!(m.cpu.reg(10), 0x123);
    assert_eq!(m.cpu.mode, ptstore::core::PrivilegeMode::Supervisor);
    // The fetches from `va` walked page tables inside the secure region.
    assert!(m.bus.stats().ptw_reads >= 3);
}

#[test]
fn kernel_and_isa_machine_share_one_truth() {
    // The same PMP semantics protect both the functional kernel and the
    // instruction-level machine: cross-check with identical regions.
    let (mut m, region) = SimMachine::with_secure_region(256 * MIB);
    let mut k = ptstore::kernel::Kernel::boot(
        ptstore::kernel::KernelConfig::cfi_ptstore()
            .with_mem_size(256 * MIB)
            .with_initial_secure_size(64 * MIB),
    )
    .expect("boot");
    let kregion = k.secure_region().expect("region");
    assert_eq!(region.base(), kregion.base());
    assert_eq!(region.end(), kregion.end());

    // Both deny a regular store at the same address.
    let target = region.base() + 0x40;
    m.load_program(
        0x1000,
        &[
            Inst::Lui {
                rd: 5,
                imm: target.as_u64() as i64,
            },
            Inst::Store {
                op: StoreOp::D,
                rs1: 5,
                rs2: 0,
                offset: 0,
            },
        ],
    );
    m.cpu.pc = 0x1000;
    let trap = m.run(10).expect("runs").expect("trap");
    assert_eq!(trap.cause, TrapCause::StoreAccessFault);

    let via = k.direct_map(target);
    assert!(k.attacker_write_u64(via, 0).is_err());
}
