//! End-to-end security: the full §V-E matrix through the facade crate.

use ptstore::attacks::{run_attack, security_matrix, AttackKind, AttackOutcome, BlockedBy};
use ptstore::kernel::DefenseMode;

#[test]
fn full_matrix_is_consistent() {
    let matrix = security_matrix();
    // 9 attacks × 4 defenses + 9 token-ablation rows.
    assert_eq!(matrix.len(), AttackKind::ALL.len() * 5);

    // The paper's headline: PTStore (full design) defeats everything.
    for r in matrix
        .iter()
        .filter(|r| r.defense == DefenseMode::PtStore && r.tokens)
    {
        assert!(
            !r.outcome.attacker_won(),
            "{} must not defeat full PTStore",
            r.attack
        );
    }

    // The undefended kernel falls to every harmful attack.
    for r in matrix.iter().filter(|r| r.defense == DefenseMode::None) {
        if r.attack != AttackKind::VmMetadata {
            assert!(
                r.outcome.attacker_won(),
                "{} should succeed with no defense",
                r.attack
            );
        }
    }
}

#[test]
fn each_layer_stops_its_designated_attack() {
    // Secure region (S-bit) ⊢ PT-Tampering.
    assert_eq!(
        run_attack(AttackKind::PtTampering, DefenseMode::PtStore, true).outcome,
        AttackOutcome::Blocked(BlockedBy::SecureRegionPmp)
    );
    // PTW origin check ⊢ PT-Injection (visible once tokens are ablated).
    assert_eq!(
        run_attack(AttackKind::PtInjection, DefenseMode::PtStore, false).outcome,
        AttackOutcome::Blocked(BlockedBy::PtwOriginCheck)
    );
    // Tokens ⊢ PT-Reuse.
    assert_eq!(
        run_attack(AttackKind::PtReuse, DefenseMode::PtStore, true).outcome,
        AttackOutcome::Blocked(BlockedBy::TokenCheck)
    );
    // Zero-check ⊢ allocator-metadata overlap.
    assert_eq!(
        run_attack(AttackKind::AllocatorMetadata, DefenseMode::PtStore, true).outcome,
        AttackOutcome::Blocked(BlockedBy::ZeroCheck)
    );
    // Physical-address checking ⊢ TLB inconsistency.
    assert_eq!(
        run_attack(AttackKind::TlbInconsistency, DefenseMode::PtStore, true).outcome,
        AttackOutcome::Blocked(BlockedBy::SecureRegionPmp)
    );
}

#[test]
fn related_work_weaknesses_reproduce() {
    // §VI-1: randomisation falls to information disclosure.
    assert_eq!(
        run_attack(AttackKind::PtTampering, DefenseMode::PtRand, true).outcome,
        AttackOutcome::SucceededViaLeak
    );
    // §VI-3 / §V-E5: virtual isolation cannot stop injection, reuse, or the
    // TLB-inconsistency bypass.
    for kind in [
        AttackKind::PtInjection,
        AttackKind::PtReuse,
        AttackKind::TlbInconsistency,
    ] {
        assert!(
            run_attack(kind, DefenseMode::VirtualIsolation, true)
                .outcome
                .attacker_won(),
            "virtual isolation should fall to {kind}"
        );
    }
    // The ablation that motivates tokens (§III-C3): without them, reuse wins
    // even with the secure region + PTW check.
    assert!(run_attack(AttackKind::PtReuse, DefenseMode::PtStore, false)
        .outcome
        .attacker_won());
}
