//! Quickstart: boot a PTStore-protected kernel, watch the mechanism work.
//!
//! ```sh
//! cargo run -p ptstore --example quickstart
//! ```

use ptstore::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Boot the CFI+PTStore kernel on a 256 MiB machine with a 16 MiB
    //    secure region at the top of physical memory.
    let cfg = KernelConfig::builder()
        .defense(DefenseMode::PtStore)
        .cfi(true)
        .mem_size(256 * MIB)
        .initial_secure_size(16 * MIB)
        .build()?;
    let mut k = Kernel::boot(cfg)?;
    let region = k.secure_region().expect("ptstore kernel has a region");
    println!("booted: secure region {region}");
    println!(
        "boot issued {} sd.pt stores building page tables inside it",
        k.bus.stats().secure_writes
    );

    // 2. Normal life: spawn a process; its page tables land in the region.
    let child = k.sys_fork()?;
    let root = k.process_root(child).expect("root");
    println!(
        "forked pid {child}; its root page table lives at {}",
        root.base_addr()
    );
    assert!(region.contains(root.base_addr()));

    // 3. The attacker's turn: an arbitrary-write primitive aims at the PTE
    //    that maps the child's code page (the PT-Tampering attack, §II-B).
    let pte = k.pte_phys_addr(child, VirtAddr::new(0x1_0000))?;
    let via_direct_map = k.direct_map(pte);
    println!("\nattacker writes PTE at {pte} via direct map {via_direct_map} ...");
    match k.attacker_write_u64(via_direct_map, 0xdead_beef) {
        Err(fault) => println!("  -> DENIED: {fault:?} (the PMP S-bit fired)"),
        Ok(()) => unreachable!("PTStore must block regular stores into the secure region"),
    }

    // 4. The kernel's own page-table writes use the dedicated instructions,
    //    so legitimate work continues unharmed.
    let before = k.bus.stats().secure_writes;
    let grandchild = k.sys_fork()?;
    println!(
        "\nkernel forked pid {grandchild} afterwards, issuing {} more sd.pt stores",
        k.bus.stats().secure_writes - before
    );
    println!(
        "security log: {:?} (defense never needed to fire for legitimate work)",
        k.security_log
    );
    Ok(())
}
