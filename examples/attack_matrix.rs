//! The §V-E security evaluation: every attack against every defense.
//!
//! ```sh
//! cargo run -p ptstore --example attack_matrix
//! ```

use ptstore::attacks::{security_matrix, AttackKind};
use ptstore::kernel::DefenseMode;

fn main() {
    println!("PTStore security matrix (paper §II-B, §V-E)");
    println!("each cell: fresh kernel, attacker with arbitrary kernel R/W\n");

    let matrix = security_matrix();
    let defenses = [
        DefenseMode::None,
        DefenseMode::PtRand,
        DefenseMode::VirtualIsolation,
        DefenseMode::PtStore,
    ];

    print!("{:<22}", "attack \\ defense");
    for d in defenses {
        print!("{:<22}", d.to_string());
    }
    println!("{:<22}", "ptstore (no tokens)");

    for kind in AttackKind::ALL {
        print!("{:<22}", kind.to_string());
        for d in defenses {
            let cell = matrix
                .iter()
                .find(|r| r.attack == kind && r.defense == d && r.tokens)
                .expect("cell exists");
            print!("{:<22}", short(&cell.outcome.to_string()));
        }
        let ablation = matrix
            .iter()
            .find(|r| r.attack == kind && r.defense == DefenseMode::PtStore && !r.tokens)
            .expect("ablation row");
        println!("{:<22}", short(&ablation.outcome.to_string()));
    }

    println!("\nlegend: blocked-by reasons abbreviated; see `reproduce security` for full text");
    let wins = matrix
        .iter()
        .filter(|r| r.defense == DefenseMode::PtStore && r.tokens && r.outcome.attacker_won())
        .count();
    println!(
        "PTStore (full design) lost {wins} of {} attacks",
        AttackKind::ALL.len()
    );
}

fn short(s: &str) -> String {
    s.replace("blocked by ", "✗ ")
        .replace("SUCCEEDED (via info leak)", "✓ via leak")
        .replace("SUCCEEDED", "✓ pwned")
        .replace("no kernel impact", "— harmless")
        .chars()
        .take(20)
        .collect()
}
