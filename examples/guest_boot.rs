//! The PTStore boot protocol (paper §IV), executed entirely as RISC-V
//! instructions on the instruction-level machine:
//!
//! 1. M-mode firmware installs the secure region through `pmpaddr`/`pmpcfg`
//!    CSR writes (the SBI of §IV-B),
//! 2. builds the Sv39 page tables inside it using **`sd.pt`** (§IV-C2),
//! 3. arms the walker origin check by writing `satp` with the **S-bit**
//!    (§IV-A1), delegates user ecalls, and drops to U-mode with `mret`;
//! 4. user code runs *through the secure page tables*, writes a value, and
//!    makes a syscall; the S-mode handler services it and halts.
//!
//! Every fetch and data access after step 3 is translated by the hardware
//! walker fetching PTEs from the secure region.
//!
//! ```sh
//! cargo run -p ptstore --example guest_boot
//! ```

use ptstore::isa::{csr, AluOp, CsrOp, Inst, SimMachine, StoreOp};
use ptstore::mmu::{Pte, PteFlags, Satp};
use ptstore::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (mut m, region) = SimMachine::with_secure_region(256 * MIB);
    println!("machine: 256 MiB RAM, secure region {region}");

    // Physical layout.
    let root = region.base(); // page tables, inside the region
    let l1 = region.base() + PAGE_SIZE;
    let l0 = region.base() + 2 * PAGE_SIZE;
    let kernel_pa: u64 = 0x2_0000; // S-mode kernel page (VA = PA here)
    let user_pa: u64 = 0x3_0000; // U-mode code page
    let shared_pa: u64 = 0x4_0000; // user-RW data page

    // Page-table entries the firmware will store with sd.pt.
    let pte_root = Pte::table(PhysPageNum::from(l1)).bits();
    let pte_l1 = Pte::table(PhysPageNum::from(l0)).bits();
    let pte_kernel = Pte::leaf(
        PhysPageNum::new(kernel_pa >> 12),
        PteFlags::kernel_rx().with(PteFlags::G),
    )
    .bits();
    let pte_user_code = Pte::leaf(PhysPageNum::new(user_pa >> 12), PteFlags::user_rx()).bits();
    let pte_shared = Pte::leaf(PhysPageNum::new(shared_pa >> 12), PteFlags::user_rw()).bits();
    let satp = Satp::new(PagingScheme::Sv39, PhysPageNum::from(root), 1, true);

    // ---- M-mode firmware (PA 0x1000, runs bare) -------------------------
    // Register file doubles as the firmware's constant pool (a data segment
    // the boot ROM would carry).
    let fw = [
        // SBI: install the secure region as a TOR pair with the S-bit.
        Inst::Csr {
            op: CsrOp::ReadWrite,
            rd: 0,
            rs1: 5,
            csr: csr::addr::PMPADDR0,
            imm_form: false,
        },
        Inst::Csr {
            op: CsrOp::ReadWrite,
            rd: 0,
            rs1: 6,
            csr: csr::addr::PMPADDR0 + 1,
            imm_form: false,
        },
        Inst::Csr {
            op: CsrOp::ReadWrite,
            rd: 0,
            rs1: 7,
            csr: csr::addr::PMPCFG0,
            imm_form: false,
        },
        // Build the page tables with sd.pt — the only instructions that can.
        Inst::SdPt {
            rs1: 8,
            rs2: 9,
            offset: 0,
        }, // root[0] = l1
        Inst::SdPt {
            rs1: 10,
            rs2: 11,
            offset: 0,
        }, // l1[0] = l0
        Inst::SdPt {
            rs1: 12,
            rs2: 13,
            offset: 8 * 0x20,
        }, // l0[0x20] = kernel page
        Inst::SdPt {
            rs1: 12,
            rs2: 14,
            offset: 8 * 0x30,
        }, // l0[0x30] = user code
        Inst::SdPt {
            rs1: 12,
            rs2: 15,
            offset: 8 * 0x40,
        }, // l0[0x40] = shared page
        // Arm the walker: satp = {sv39, S=1, root}.
        Inst::Csr {
            op: CsrOp::ReadWrite,
            rd: 0,
            rs1: 16,
            csr: csr::addr::SATP,
            imm_form: false,
        },
        // Delegate ecall-U (cause 8) to S-mode; set stvec to the handler.
        Inst::Csr {
            op: CsrOp::ReadWrite,
            rd: 0,
            rs1: 17,
            csr: csr::addr::MEDELEG,
            imm_form: false,
        },
        Inst::Csr {
            op: CsrOp::ReadWrite,
            rd: 0,
            rs1: 18,
            csr: csr::addr::STVEC,
            imm_form: false,
        },
        // mret to U-mode at the user page (MPP=00 preloaded in mstatus).
        Inst::Csr {
            op: CsrOp::ReadWrite,
            rd: 0,
            rs1: 19,
            csr: csr::addr::MEPC,
            imm_form: false,
        },
        Inst::Mret,
    ];
    m.load_program(0x1000, &fw);
    m.cpu.set_reg(5, region.base().as_u64() >> 2);
    m.cpu.set_reg(6, region.end().as_u64() >> 2);
    m.cpu.set_reg(7, 0b0010_1011 << 8); // entry1: S|TOR|W|R
    m.cpu.set_reg(8, root.as_u64());
    m.cpu.set_reg(9, pte_root);
    m.cpu.set_reg(10, l1.as_u64());
    m.cpu.set_reg(11, pte_l1);
    m.cpu.set_reg(12, l0.as_u64());
    m.cpu.set_reg(13, pte_kernel);
    m.cpu.set_reg(14, pte_user_code);
    m.cpu.set_reg(15, pte_shared);
    m.cpu.set_reg(16, satp.to_bits());
    m.cpu.set_reg(17, 1 << 8); // medeleg: ecall-U
    m.cpu.set_reg(18, kernel_pa + 0x100); // stvec = handler VA
    m.cpu.set_reg(19, user_pa); // mepc = user entry VA

    // ---- U-mode program (PA/VA 0x3_0000) --------------------------------
    let user = [
        // a0 = 42; store it to the shared page; syscall.
        Inst::OpImm {
            op: AluOp::Add,
            rd: 10,
            rs1: 0,
            imm: 42,
            word: false,
        },
        Inst::Lui {
            rd: 11,
            imm: shared_pa as i64,
        },
        Inst::Store {
            op: StoreOp::D,
            rs1: 11,
            rs2: 10,
            offset: 0,
        },
        Inst::Ecall,
    ];
    m.load_program(user_pa, &user);

    // ---- S-mode trap handler (PA/VA 0x2_0100) ----------------------------
    let handler = [
        // "Service" the syscall: result = a0 + 58; store next to the input.
        Inst::OpImm {
            op: AluOp::Add,
            rd: 17,
            rs1: 10,
            imm: 58,
            word: false,
        },
        Inst::Store {
            op: StoreOp::D,
            rs1: 11,
            rs2: 17,
            offset: 8,
        },
        Inst::Wfi,
    ];
    m.load_program(kernel_pa + 0x100, &handler);

    // ---- Run the whole boot ---------------------------------------------
    m.cpu.pc = 0x1000;
    let traps = m.run_through_traps(500)?;
    println!(
        "\nexecuted {} instructions, traps taken: {:?}",
        m.cpu.instret,
        traps
            .iter()
            .map(|t| t.cause.to_string())
            .collect::<Vec<_>>()
    );

    // The syscall was delegated to S-mode.
    assert_eq!(traps.len(), 1);
    assert_eq!(traps[0].cause.code(), 8, "ecall from U");
    assert!(traps[0].delegated);
    assert_eq!(m.cpu.mode, PrivilegeMode::Supervisor);

    // The user's value and the kernel's response, read back raw.
    let user_val = m.bus.mem().read_u64(PhysAddr::new(shared_pa))?;
    let kernel_val = m.bus.mem().read_u64(PhysAddr::new(shared_pa + 8))?;
    println!("shared page: user wrote {user_val}, handler answered {kernel_val}");
    assert_eq!(user_val, 42);
    assert_eq!(kernel_val, 100);

    // And the machinery that made it work:
    let stats = m.bus.stats();
    println!(
        "sd.pt stores (page-table construction): {}\nwalker fetches from the secure region: {}",
        stats.secure_writes, stats.ptw_reads
    );
    assert_eq!(stats.secure_writes, 5);
    assert!(
        stats.ptw_reads >= 9,
        "U fetch + loads/stores + S fetch all walked"
    );
    assert_eq!(stats.faults, 0, "no PTStore fault on the legitimate path");
    println!("\nboot protocol of §IV reproduced at the instruction level ✓");
    Ok(())
}
