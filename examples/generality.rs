//! §V-F: "PTStore is general to isolate and protect other critical data" —
//! here, a bare-metal application's watchdog-timer control block and a table
//! of code pointers, placed in the secure region and manipulated only with
//! `ld.pt`/`sd.pt`.
//!
//! ```sh
//! cargo run -p ptstore --example generality
//! ```

use ptstore::prelude::*;

/// A bare-metal "application" layout inside the secure region.
struct CriticalData {
    /// Watchdog control register shadow (paper §V-F's example).
    watchdog_ctrl: PhysAddr,
    /// A table of 8 code pointers (e.g. interrupt handlers).
    handler_table: PhysAddr,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A bare-metal machine: 64 MiB RAM, a 1 MiB secure region for critical
    // data — no MMU, no kernel, just PMP + the new instructions.
    let mut bus = Bus::new(64 * MIB);
    let region = SecureRegion::new(PhysAddr::new(63 * MIB), MIB)?;
    bus.install_secure_region(&region)?;
    let ctx = AccessContext::machine();

    let data = CriticalData {
        watchdog_ctrl: region.base(),
        handler_table: region.base() + 0x100,
    };

    // Firmware initialises the critical data through the dedicated channel.
    println!("secure region for critical data: {region}");
    bus.write::<u64>(
        data.watchdog_ctrl,
        0x1, /* enabled */
        Channel::SecurePt,
        ctx,
    )?;
    for i in 0..8u64 {
        bus.write::<u64>(
            data.handler_table + i * 8,
            0x4000_0000 + i * 0x100, // legitimate handler entry points
            Channel::SecurePt,
            ctx,
        )?;
    }
    println!("watchdog enabled, 8 handler pointers installed (via sd.pt)");

    // The exploit attempt: a memory-corruption primitive (regular stores)
    // tries to (1) disable the watchdog, (2) hijack a handler pointer.
    let disable = bus.write::<u64>(data.watchdog_ctrl, 0, Channel::Regular, ctx);
    println!("\nattack 1 — disable watchdog with a regular store:");
    println!("  -> {:?}", disable.unwrap_err());

    let hijack = bus.write::<u64>(
        data.handler_table + 3 * 8,
        0xdead_beef,
        Channel::Regular,
        ctx,
    );
    println!("attack 2 — hijack handler[3] with a regular store:");
    println!("  -> {:?}", hijack.unwrap_err());

    // Reads are blocked too: the table cannot even be disclosed.
    let leak = bus.read::<u64>(data.handler_table, Channel::Regular, ctx);
    println!("attack 3 — leak handler table with a regular load:");
    println!("  -> {:?}", leak.unwrap_err());

    // Meanwhile the firmware's legitimate paths still work.
    let ctrl = bus.read::<u64>(data.watchdog_ctrl, Channel::SecurePt, ctx)?;
    let h3 = bus.read::<u64>(data.handler_table + 3 * 8, Channel::SecurePt, ctx)?;
    assert_eq!(ctrl, 1, "watchdog still enabled");
    assert_eq!(h3, 0x4000_0300, "handler intact");
    println!("\nfirmware view (via ld.pt): watchdog={ctrl:#x}, handler[3]={h3:#x} — intact ✓");
    println!(
        "faults recorded by the bus: {} (every attack, none of the firmware ops)",
        bus.stats().faults
    );
    Ok(())
}
