//! The ISA extension up close: encode, disassemble, and execute
//! `ld.pt`/`sd.pt` on the instruction-level machine (paper §IV-A).
//!
//! ```sh
//! cargo run -p ptstore --example isa_demo
//! ```

use ptstore::isa::{encode, AluOp, Inst, SimMachine, StoreOp, TrapCause};
use ptstore::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A machine with the secure region installed at the top of 128 MiB.
    let (mut m, region) = SimMachine::with_secure_region(128 * MIB);
    println!("secure region: {region}\n");

    // The two new instructions, as the modified decoder sees them.
    let ld_pt = Inst::LdPt {
        rd: 10,
        rs1: 5,
        offset: 0,
    };
    let sd_pt = Inst::SdPt {
        rs1: 5,
        rs2: 6,
        offset: 0,
    };
    println!("encodings (custom-0/custom-1 opcode space, funct3=011):");
    println!("  {:<22} = {:#010x}", ld_pt.to_string(), encode(ld_pt));
    println!("  {:<22} = {:#010x}", sd_pt.to_string(), encode(sd_pt));

    // Program 1: the kernel's page-table write path — sd.pt into the secure
    // region, then read it back with ld.pt.
    let base = region.base().as_u64();
    let program = [
        Inst::Lui {
            rd: 5,
            imm: base as i64,
        }, // t0 = region base
        Inst::OpImm {
            op: AluOp::Add,
            rd: 6,
            rs1: 0,
            imm: 0x5a5,
            word: false,
        }, // t1 = pte bits
        Inst::SdPt {
            rs1: 5,
            rs2: 6,
            offset: 0,
        }, // set_pte!
        Inst::LdPt {
            rd: 10,
            rs1: 5,
            offset: 0,
        }, // read back
        Inst::Wfi,
    ];
    m.load_program(0x1000, &program);
    m.cpu.pc = 0x1000;
    m.run(100)?;
    println!(
        "\nkernel path: sd.pt wrote, ld.pt read back a0 = {:#x} ✓",
        m.cpu.reg(10)
    );
    assert_eq!(m.cpu.reg(10), 0x5a5);

    // Program 2: the attack path — a *regular* store to the same address.
    let (mut m2, _) = SimMachine::with_secure_region(128 * MIB);
    let attack = [
        Inst::Lui {
            rd: 5,
            imm: base as i64,
        },
        Inst::Store {
            op: StoreOp::D,
            rs1: 5,
            rs2: 6,
            offset: 0,
        }, // plain sd
    ];
    m2.load_program(0x1000, &attack);
    m2.cpu.pc = 0x1000;
    let trap = m2.run(100)?.expect("must trap");
    println!(
        "attack path: regular sd at {:#x} -> trap: {} (tval={:#x}) ✓",
        base, trap.cause, trap.tval
    );
    assert_eq!(trap.cause, TrapCause::StoreAccessFault);

    // Program 3: ld.pt outside the region is equally illegal.
    let (mut m3, _) = SimMachine::with_secure_region(128 * MIB);
    m3.load_program(
        0x1000,
        &[Inst::LdPt {
            rd: 10,
            rs1: 0,
            offset: 0x100,
        }],
    );
    m3.cpu.pc = 0x1000;
    let trap = m3.run(100)?.expect("must trap");
    println!(
        "misuse path: ld.pt outside region -> trap: {} ✓",
        trap.cause
    );
    assert_eq!(trap.cause, TrapCause::LoadAccessFault);

    println!("\nthe three Fig. 1 arrows, demonstrated at the instruction level.");
    Ok(())
}
