//! Dynamic secure-region adjustment under a fork storm (paper §IV-C1,
//! §V-D1): watch the 64 MiB-style region grow on demand, contiguously,
//! while the PMP boundary follows.
//!
//! ```sh
//! cargo run -p ptstore --example fork_storm --release
//! ```

use ptstore::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = KernelConfig::cfi_ptstore()
        .to_builder()
        .mem_size(512 * MIB)
        .initial_secure_size(2 * MIB)
        .adjust_chunk(2 * MIB)
        .build()?;
    let mut k = Kernel::boot(cfg)?;

    let region0 = k.secure_region().expect("region");
    println!("initial secure region: {region0}");
    println!("creating 2000 simultaneous processes...\n");

    let mut children = Vec::new();
    let mut last_adjustments = 0;
    for i in 0..2000u32 {
        children.push(k.sys_fork()?);
        if k.stats.adjustments != last_adjustments {
            last_adjustments = k.stats.adjustments;
            let r = k.secure_region().expect("region");
            println!(
                "after {:>5} forks: adjustment #{:<2} -> region {} ({} pt pages live)",
                i + 1,
                last_adjustments,
                r,
                k.stats.pt_pages_live
            );
        }
    }

    let grown = k.secure_region().expect("region");
    println!("\nfinal region: {grown}");
    println!(
        "  grew downward: end fixed at {}, base {} -> {}",
        grown.end(),
        region0.base(),
        grown.base()
    );
    println!(
        "  adjustments: {}, migrated pages: {}",
        k.stats.adjustments, k.stats.migrated_pages
    );
    assert_eq!(grown.end(), region0.end(), "region grows downward only");

    // The PMP agrees with the kernel at every step.
    assert_eq!(k.bus.secure_region(), Some(grown));
    println!("  PMP boundary matches the kernel's view ✓");

    // Tear down and show the region stays grown (Linux-like: zones don't
    // shrink back) but all pages return to the free lists.
    for child in children {
        k.do_switch_to(child)?;
        k.sys_exit(0)?;
    }
    while k.sys_wait().is_ok() {}
    println!(
        "\nafter teardown: {} free pages in the PTStore zone, {} token failures (0 = healthy)",
        k.pt_area_free_pages().expect("zone"),
        k.stats.token_failures
    );
    Ok(())
}
