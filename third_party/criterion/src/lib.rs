//! Offline stand-in for `criterion`.
//!
//! Implements the narrow API the bench targets use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `sample_size`, `throughput`,
//! `iter`, and the `criterion_group!`/`criterion_main!` macros) with a
//! plain wall-clock measurement loop. There is no statistical analysis —
//! the cycle model inside the simulator is the number that matters for the
//! paper's tables; host time is printed for orientation only.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark("", name, 10, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work per iteration for derived throughput rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &self.name,
            &id.label(),
            self.sample_size,
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &self.name,
            &id.label(),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        Self {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        Self {
            function,
            parameter: None,
        }
    }
}

/// Work performed per iteration (for throughput lines).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `samples` calls of `f` (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }
}

fn run_benchmark<F: FnOnce(&mut Bencher)>(
    group: &str,
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: F,
) {
    let mut b = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    if b.iters == 0 {
        println!("bench {full}: no measurement (iter not called)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() / u128::from(b.iters);
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0 => {
            let rate = (n as f64) * 1e9 / per_iter as f64;
            println!("bench {full}: {per_iter} ns/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if per_iter > 0 => {
            let rate = (n as f64) * 1e9 / per_iter as f64;
            println!("bench {full}: {per_iter} ns/iter ({rate:.0} B/s)");
        }
        _ => println!("bench {full}: {per_iter} ns/iter"),
    }
}

/// Declares a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching `criterion::black_box` (tree code uses
/// `std::hint::black_box` directly, but keep the name available).
pub use std::hint::black_box;
