//! Offline stand-in for `serde_derive`.
//!
//! The companion `serde` stub provides blanket impls of its marker traits,
//! so the derives here only need to accept the attribute syntax and emit
//! nothing. This keeps every `#[derive(Serialize, Deserialize)]` in the
//! workspace compiling in a network-less build environment.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
