//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the subset of the proptest DSL the workspace uses:
//! `proptest!` / `prop_compose!` / `prop_oneof!` blocks, `Strategy` with
//! `prop_map`, integer-range and tuple strategies, `Just`, `any`,
//! `collection::{vec, btree_set}`, and the `prop_assert*` / `prop_assume`
//! macros. Generation is deterministic (seeded per test name) and there is
//! no shrinking: a failing case reports its inputs via the assertion
//! message instead of minimising them. That trade-off keeps the harness
//! dependency-free while preserving the coverage the property tests exist
//! for.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};
    pub use crate::{prop_compose, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)*), l, r
                ),
            ));
        }
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks one of several strategies (optionally weighted) per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines a named strategy-producing function from component strategies.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)
            ($($pat:pat in $strat:expr),* $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)*),
                move |($($pat,)*)| $body,
            )
        }
    };
}

/// Defines deterministic property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(config = ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut cases_run: u32 = 0;
            let mut rejects: u32 = 0;
            while cases_run < config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => cases_run += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        if rejects > config.cases.saturating_mul(16).max(1024) {
                            panic!(
                                "{}: too many prop_assume rejections ({rejects})",
                                stringify!($name)
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "{}: property failed at case {}/{}:\n{}",
                            stringify!($name),
                            cases_run + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(config = ($cfg); $($rest)*);
    };
}
