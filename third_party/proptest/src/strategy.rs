//! Value-generation strategies (generate-only, no shrinking).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: std::rc::Rc::new(move |rng| self.generate(rng)),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    #[allow(clippy::type_complexity)]
    gen: std::rc::Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

/// A weighted choice among strategies of a common value type.
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        Self::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Self {
            options,
            total_weight,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total_weight;
        for (weight, strat) in &self.options {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weight bookkeeping out of sync");
    }
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (full value range for integers).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
