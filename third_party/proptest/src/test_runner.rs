//! Deterministic test harness pieces used by the `proptest!` macro.

/// Per-block configuration (only `cases` is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property for `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assert*` failed: the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the input: try another.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// xoshiro256** seeded from a hash of the test name: deterministic per test
/// and stable across runs, so failures are reproducible without a seed file.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::seed_from_u64(h)
    }

    pub fn seed_from_u64(mut state: u64) -> Self {
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
