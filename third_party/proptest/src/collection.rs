//! Collection strategies.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` whose size is drawn from `size` (duplicates are retried a
/// bounded number of times, so a narrow element domain can yield fewer
/// elements than requested).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(size.start < size.end, "empty set size range");
    BTreeSetStrategy { element, size }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let want = self.size.start + (rng.next_u64() % span) as usize;
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < want && attempts < want * 16 + 64 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
