//! Offline stand-in for `rand` 0.9.
//!
//! Provides the slice of the API the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::random` — backed by
//! xoshiro256** seeded through splitmix64. Deterministic for a given seed,
//! which is exactly what the PT-Rand model wants.

/// Types that can be produced by [`Rng::random`].
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the same family the real `StdRng` has used; small,
    /// fast, and statistically solid for simulation purposes.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_for_seed() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for _ in 0..16 {
                assert_eq!(a.random::<u64>(), b.random::<u64>());
            }
        }

        #[test]
        fn different_seeds_diverge() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(2);
            assert_ne!(
                (0..4).map(|_| a.random::<u64>()).collect::<Vec<_>>(),
                (0..4).map(|_| b.random::<u64>()).collect::<Vec<_>>()
            );
        }
    }
}
