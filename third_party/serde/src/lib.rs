//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate supplies
//! the minimal surface the workspace actually uses: the `Serialize` /
//! `Deserialize` trait names (for bounds and `use` statements) and the
//! derive macros of the same names. The traits are markers with blanket
//! impls; the derives are no-ops. Nothing in-tree performs serde-based
//! serialisation (JSON output is hand-rolled in `ptstore-trace` and the
//! bench CSV writers), so marker semantics are sufficient.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub mod de {
    pub use super::Deserialize;
    pub use super::DeserializeOwned;
}

pub mod ser {
    pub use super::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
